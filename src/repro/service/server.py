"""Concurrent multi-tenant serving front end over one :class:`QService`.

:class:`QServer` splits the service's traffic into two lanes:

* **Reads** — queries, answer streams, stats — run concurrently on a thread
  pool.  Each read grabs the current :class:`~repro.service.snapshots.ReadSnapshot`
  reference once and answers entirely against it, so reads never block on
  writes, never observe a half-applied mutation, and two reads of the same
  (view, tenant) on one snapshot share a single solve.
* **Writes** — feedback, source registration/removal, view creation — are
  serialized through one bounded queue drained by a single writer thread.
  After each *successful* write the writer re-expands structurally stale
  views (so all edge-id-consuming expansion happens in the writer lane) and
  publishes a fresh snapshot **before** completing the write's future: by
  the time a caller observes its write finished, every new read sees it.

The queue bound is the backpressure contract: when ``write_queue_limit``
writes are already pending, further writes fail fast with
:class:`~repro.exceptions.ServiceOverloadedError` instead of queuing
unboundedly — readers are unaffected (they never enter the queue), and
admitted writes retain FIFO fairness.  A failed write publishes nothing:
its snapshot never exists, and its future carries the exception.

Failure model (see README "Failure model")
------------------------------------------
The writer lane is *supervised*: no exception escapes it silently.

* **Transient storage faults** (SQLite ``locked``/``busy``, injected I/O
  errors) are classified by :func:`repro.faults.retry.classify_storage_error`
  and retried with exponential backoff + jitter under the session config's
  ``write_retry_*`` knobs.  Each write carries an idempotency key recorded
  by the service *before* its autosave, so a retry after a partially
  applied attempt never double-applies; the process-global edge-id counter
  is rewound before a retry whose previous attempt did not land, keeping
  retries invisible to tree signatures and the isolation oracle.
* **Non-transient storage faults** flip the server into read-only
  *degraded* mode: reads keep serving the last published snapshot, pending
  and new writes fail fast with
  :class:`~repro.exceptions.ServiceUnavailableError`, and
  :meth:`QServer.recover` revalidates the backend before lifting the mode.
* **Deadlines** — a read carrying ``deadline_ms`` polls a cooperative
  :class:`~repro.faults.budget.Budget` through solve and execution; expiry
  yields :class:`~repro.exceptions.DeadlineExceededError`, or a partial
  :class:`ReadResult` flagged ``degraded=True`` once answers exist.
* **Shutdown** — :meth:`QServer.close` accepts a ``timeout``; writes still
  queued when it elapses fail with
  :class:`~repro.exceptions.ServerClosedError` instead of blocking the
  caller forever.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Tuple

from ..datastore.provenance import AnswerTuple
from ..exceptions import (
    InvalidRequestError,
    ServerClosedError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SnapshotError,
    StorageError,
)
from ..api.streaming import paginate
from ..api.types import (
    AnswerPage,
    FeedbackRequest,
    QueryRequest,
    RegisterSourceRequest,
    ViewInfo,
)
from ..faults.budget import Budget
from ..faults.retry import RetryPolicy, classify_storage_error, is_transient
from ..graph.edges import edge_id_counter, set_edge_id_counter
from ..obs import Observability
from ..obs.tracing import ReadTrace, active_trace
from .snapshots import ReadSnapshot, SnapshotCounters

_SENTINEL = object()

#: Server health states (:meth:`QServer.health`): ``healthy`` → writes
#: accepted; ``degraded`` → read-only until :meth:`QServer.recover`;
#: ``closed`` → both lanes stopped.
HEALTHY = "healthy"
DEGRADED = "degraded"
CLOSED = "closed"


@dataclass(frozen=True)
class ReadResult:
    """One snapshot-isolated query answer: the data plus its provenance.

    ``snapshot_id`` identifies the exact service state (= number of writes
    applied before capture) the answers were priced and executed against —
    the handle the load harness's isolation oracle replays.

    ``degraded`` marks a deadline-truncated read: the request's budget
    expired after at least one answer materialized, so ``answers`` is a
    valid *prefix* of the full ranking (complete trees only), not the whole
    ranking.  Degraded answers are never cached or carried over — a later
    unbudgeted read of the same view recomputes the full result.

    ``trace`` is the read's timing breakdown (see
    :class:`~repro.obs.tracing.ReadTrace`): the span tree from snapshot
    acquire through solve/execute to pagination, the serving path
    (``windowed`` / ``posting-join`` / ``python-union`` / ...) and, on
    fallback from the windowed pushdown, the concrete ineligibility
    reason.  ``None`` when the session runs with ``observability=False``.
    """

    view_id: str
    view_name: str
    snapshot_id: int
    tenant: Optional[str]
    answers: Tuple[AnswerTuple, ...]
    page_size: int
    degraded: bool = False
    trace: Optional[ReadTrace] = None

    def pages(self) -> Iterator[AnswerPage]:
        """The answers re-chunked into the service's page shape."""
        return paginate(self.answers, self.view_id, self.page_size)

    def __len__(self) -> int:
        return len(self.answers)


@dataclass(frozen=True)
class ServerStats:
    """Aggregate counters of one serving front end."""

    snapshot_id: int
    reads_served: int
    writes_applied: int
    writes_failed: int
    writes_rejected: int
    snapshots_published: int
    pinned_materializations: int
    pinned_carryovers: int
    queue_depth: int
    read_workers: int
    write_queue_limit: int
    health: str = HEALTHY
    writes_retried: int = 0
    writes_cancelled: int = 0
    reads_degraded: int = 0


class _WriteOp:
    __slots__ = ("fn", "kind", "tag", "op_key", "future", "enqueued_s")

    def __init__(
        self,
        fn: Callable[[], object],
        kind: str,
        tag: Optional[str],
        op_key: Optional[str] = None,
    ) -> None:
        self.fn = fn
        self.kind = kind
        self.tag = tag
        #: Idempotency key recorded by the service when the mutation lands
        #: (before autosave), so a retry never double-applies.
        self.op_key = op_key
        self.future: Future = Future()
        #: Tracer-clock stamp taken at admission; the writer lane turns it
        #: into the op's ``queue_wait`` span.
        self.enqueued_s: float = 0.0

    def cancel(self) -> bool:
        """Cancel the op if the writer has not picked it up yet.

        Thin alias for ``future.cancel()``: once the writer calls
        ``set_running_or_notify_cancel`` the op is committed and this
        returns ``False``.  A successfully cancelled op is skipped (and
        counted) when the writer dequeues it.
        """
        return self.future.cancel()


class QServer:
    """Thread-pooled, snapshot-isolated serving layer over a session.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.QService` to serve.  The server owns
        its mutation discipline from construction on: apply writes through
        the server, not directly on the service.
    read_workers:
        Size of the concurrent read pool; ``0`` = one per CPU.  Defaults to
        ``service.config.read_workers``.
    write_queue_limit:
        Bound of the single-writer mutation queue.  Defaults to
        ``service.config.write_queue_limit``.
    retry_policy:
        Writer-lane retry policy for transient storage faults.  Defaults to
        a policy built from the session config's ``write_retry_*`` knobs;
        tests inject one with a fake ``sleep``/``rng`` for determinism.

    Every read/write has a ``submit_*`` form returning a
    :class:`concurrent.futures.Future` (asyncio-friendly via
    ``asyncio.wrap_future``) and a blocking convenience form.
    """

    def __init__(
        self,
        service,
        read_workers: Optional[int] = None,
        write_queue_limit: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._service = service
        workers = (
            read_workers
            if read_workers is not None
            else getattr(service.config, "read_workers", 4)
        )
        if workers == 0:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise InvalidRequestError(f"read_workers must be >= 0, got {workers}")
        limit = (
            write_queue_limit
            if write_queue_limit is not None
            else getattr(service.config, "write_queue_limit", 64)
        )
        if limit < 1:
            raise InvalidRequestError(f"write_queue_limit must be >= 1, got {limit}")
        self.read_workers = workers
        self.write_queue_limit = limit
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=getattr(service.config, "write_retry_attempts", 3),
                base_delay_s=getattr(service.config, "write_retry_base_delay_s", 0.005),
                max_delay_s=getattr(service.config, "write_retry_max_delay_s", 0.1),
            )
        self._retry_policy = retry_policy
        #: Shared observability bundle (see :mod:`repro.obs`): the server
        #: traces its lanes into the session's registry/logs, so one scrape
        #: covers service and server alike.  A bare service (tests wiring a
        #: stub) gets the do-nothing bundle.
        self.obs: Observability = getattr(service, "obs", None) or Observability.noop()

        self._counters = SnapshotCounters()
        self._stats_lock = threading.Lock()
        self._reads_served = 0
        self._reads_degraded = 0
        self._writes_admitted = 0
        self._writes_applied = 0
        self._writes_failed = 0
        self._writes_rejected = 0
        self._writes_retried = 0
        self._writes_cancelled = 0
        self._snapshots_published = 0
        self._health = HEALTHY
        self._last_fault: Optional[BaseException] = None
        #: ``(kind, tag)`` of every applied write, in apply order — the
        #: exact serial schedule an isolation oracle must replay.
        self.write_log: List[Tuple[str, Optional[str]]] = []

        # Idempotency keys are unique per server incarnation; the per-op
        # suffix keeps them readable in journals and fault-harness dumps.
        self._op_prefix = uuid.uuid4().hex[:8]
        self._op_seq = itertools.count(1)

        self._closed = False
        self._close_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue(maxsize=limit)
        # Initial publish happens before any reader or writer exists, so
        # snapshot 0 is the pristine service state.
        service.prepare_views(structural_only=True)
        self._snapshot = ReadSnapshot.capture(
            service, 0, previous=None, counters=self._counters
        )
        self._snapshots_published = 1
        self._last_publish_monotonic = time.monotonic()
        self._register_server_metrics()
        self._read_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qserve-read"
        )
        self._writer = threading.Thread(
            target=self._writer_loop, name="qserve-writer", daemon=True
        )
        self._writer.start()

    def _register_server_metrics(self) -> None:
        """Expose the serving lanes on the shared registry.

        All callback gauges over the server's plain counters: the lanes
        keep their lock-guarded int arithmetic, scrapes read live values.
        """
        gauge = self.obs.registry.gauge
        gauge("q_snapshot_id", "Currently published snapshot id", fn=lambda: self._snapshot.snapshot_id)
        gauge(
            "q_snapshot_age_seconds",
            "Seconds since the last snapshot publish",
            fn=lambda: max(time.monotonic() - self._last_publish_monotonic, 0.0),
        )
        gauge("q_write_queue_depth", "Writes waiting in the mutation queue", fn=self._queue.qsize)
        gauge(
            "q_pending_writes",
            "Writes admitted but not yet applied, failed or cancelled",
            fn=lambda: max(
                self._writes_admitted
                - self._writes_applied
                - self._writes_failed
                - self._writes_cancelled,
                0,
            ),
        )
        gauge(
            "q_health_state",
            "Server health: 0 healthy, 1 degraded, 2 closed",
            fn=lambda: 2.0 if self._closed else (0.0 if self._health == HEALTHY else 1.0),
        )
        gauge("q_writes_applied_total", "Writes applied by the writer lane", fn=lambda: self._writes_applied)
        gauge("q_writes_failed_total", "Writes whose future carries an exception", fn=lambda: self._writes_failed)
        gauge("q_writes_rejected_total", "Writes refused at admission", fn=lambda: self._writes_rejected)
        gauge("q_writes_retried_total", "Transient-fault retries in the writer lane", fn=lambda: self._writes_retried)
        gauge("q_writes_cancelled_total", "Writes cancelled while queued", fn=lambda: self._writes_cancelled)
        gauge("q_snapshots_published_total", "Read snapshots published", fn=lambda: self._snapshots_published)
        gauge(
            "q_pinned_materializations_total",
            "Pinned (view, tenant) materializations computed",
            fn=lambda: self._counters.materializations,
        )
        gauge(
            "q_pinned_carryovers_total",
            "Pinned answer sets carried over across snapshots",
            fn=lambda: self._counters.carryovers,
        )
        gauge("q_read_pool_workers", "Size of the concurrent read pool", fn=lambda: self.read_workers)
        gauge("q_write_queue_limit", "Bound of the mutation queue", fn=lambda: self.write_queue_limit)

    def metrics(self, fmt: str = "prometheus"):
        """The shared metrics registry in exposition form.

        Same surface as :meth:`QService.metrics` — the server and its
        session share one registry, so either scrape sees both lanes.
        """
        if fmt in ("prometheus", "text"):
            return self.obs.registry.prometheus_text()
        if fmt == "json":
            return self.obs.registry.as_dict()
        raise InvalidRequestError(f"unknown metrics format {fmt!r}; use 'prometheus' or 'json'")

    # ------------------------------------------------------------------
    # Health / supervision
    # ------------------------------------------------------------------
    def health(self) -> str:
        """``"healthy"``, ``"degraded"`` (read-only) or ``"closed"``."""
        if self._closed:
            return CLOSED
        with self._stats_lock:
            return self._health

    def last_fault(self) -> Optional[BaseException]:
        """The failure that degraded the server, if it is degraded."""
        with self._stats_lock:
            return self._last_fault

    def recover(self) -> str:
        """Revalidate the backend and lift degraded mode.  Returns health.

        Probes the storage backend (a cheap metadata read) and, when the
        session is persistent, its session store.  A failing probe leaves
        the server degraded and raises
        :class:`~repro.exceptions.ServiceUnavailableError` carrying the
        probe failure as its cause.
        """
        self._check_open()
        with self._stats_lock:
            if self._health == HEALTHY:
                return HEALTHY
        service = self._service
        try:
            backend = getattr(service.catalog, "backend", None)
            if backend is not None:
                backend.relation_keys()
            persistence = getattr(service, "_persistence", None)
            if persistence is not None:
                persistence.store.entry_count()
        except Exception as exc:
            raise ServiceUnavailableError(
                f"recovery probe failed; server stays degraded: {exc}"
            ) from exc
        with self._stats_lock:
            self._health = HEALTHY
            self._last_fault = None
        return HEALTHY

    def _degrade(self, exc: BaseException) -> None:
        """Flip to read-only mode and fail everything still queued."""
        with self._stats_lock:
            self._health = DEGRADED
            self._last_fault = exc
        failed = self._drain_queue(
            lambda: ServiceUnavailableError(
                f"server degraded to read-only after a storage failure: {exc}"
            )
        )
        if failed:
            with self._stats_lock:
                self._writes_failed += failed

    def _drain_queue(self, make_error: Callable[[], BaseException]) -> int:
        """Fail every op still queued; returns how many were failed.

        Runs either on the writer thread itself (degrade path) or after the
        writer is confirmed dead/wedged (:meth:`close` timeout path), so it
        never races the writer's own ``get``.  A sentinel encountered while
        draining is re-queued so a still-alive writer eventually exits.
        """
        failed = 0
        sentinel_seen = False
        while True:
            try:
                op = self._queue.get_nowait()
            except queue.Empty:
                break
            if op is _SENTINEL:
                sentinel_seen = True
                continue
            if op.future.set_running_or_notify_cancel():
                op.future.set_exception(make_error())
                failed += 1
            else:
                with self._stats_lock:
                    self._writes_cancelled += 1
        if sentinel_seen:
            try:
                self._queue.put_nowait(_SENTINEL)
            except queue.Full:  # pragma: no cover - queue refilled mid-drain
                pass
        return failed

    def _is_fatal_storage_failure(self, exc: BaseException) -> bool:
        """Non-transient storage/persistence failures degrade the server.

        Plain operational errors (a malformed request surfacing late, a
        matcher bug) fail only their own op — the service state is still
        trustworthy, so the server stays healthy.
        """
        classified = classify_storage_error(exc)
        return isinstance(classified, (StorageError, SnapshotError)) and not is_transient(
            classified
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def submit_query(
        self, request: QueryRequest, deadline_ms: Optional[float] = None
    ) -> "Future[ReadResult]":
        """Schedule a snapshot-isolated read; returns its future.

        ``deadline_ms`` (or ``request.deadline_ms``) arms a cooperative
        budget over the read's solve/execute work; see :class:`ReadResult`
        for the partial-answer contract.  The budget's clock starts when
        the read *runs*, not while it waits for a pool slot.
        """
        self._check_open()
        if deadline_ms is not None:
            request = replace(request, deadline_ms=deadline_ms)
        return self._read_pool.submit(self._read, request)

    def query(
        self, request: QueryRequest, deadline_ms: Optional[float] = None
    ) -> ReadResult:
        """Blocking form of :meth:`submit_query`."""
        return self.submit_query(request, deadline_ms=deadline_ms).result()

    def snapshot(self) -> ReadSnapshot:
        """The currently published snapshot (advanced by each write)."""
        return self._snapshot

    def stats(self) -> ServerStats:
        with self._stats_lock:
            reads = self._reads_served
            degraded_reads = self._reads_degraded
            applied = self._writes_applied
            failed = self._writes_failed
            rejected = self._writes_rejected
            retried = self._writes_retried
            cancelled = self._writes_cancelled
            published = self._snapshots_published
            health = CLOSED if self._closed else self._health
        with self._counters.lock:
            materializations = self._counters.materializations
            carryovers = self._counters.carryovers
        return ServerStats(
            snapshot_id=self._snapshot.snapshot_id,
            reads_served=reads,
            writes_applied=applied,
            writes_failed=failed,
            writes_rejected=rejected,
            snapshots_published=published,
            pinned_materializations=materializations,
            pinned_carryovers=carryovers,
            queue_depth=self._queue.qsize(),
            read_workers=self.read_workers,
            write_queue_limit=self.write_queue_limit,
            health=health,
            writes_retried=retried,
            writes_cancelled=cancelled,
            reads_degraded=degraded_reads,
        )

    def _read(self, request: QueryRequest) -> ReadResult:
        budget = (
            Budget.from_deadline_ms(request.deadline_ms)
            if request.deadline_ms is not None
            else None
        )
        trace = self.obs.tracer.trace("read")
        with trace:
            with trace.span("snapshot_acquire"):
                snapshot = self._snapshot
                ref = request.view
                if ref is not None and not isinstance(ref, str):
                    raise InvalidRequestError(
                        "QServer resolves views by id or name; pass a string reference"
                    )
                sv = snapshot.resolve(ref, request.keywords, request.name)
                if sv is None:
                    if not request.keywords:
                        raise InvalidRequestError(
                            "QueryRequest needs keywords or a view reference"
                        )
                    # Unknown keywords: view creation is a write.  Route it
                    # through the writer lane, then read against the
                    # post-create snapshot.
                    info = self._ensure_view(request)
                    snapshot = self._snapshot
                    sv = snapshot.resolve(info.view_id, (), None)
                    if sv is None:  # pragma: no cover - a concurrent remove raced us
                        raise InvalidRequestError(
                            f"view {info.view_id} vanished before its first read"
                        )
            if request.k is not None and sv.k != request.k:
                raise InvalidRequestError(
                    f"view {sv.name!r} ({sv.view_id}) has k={sv.k}; the request "
                    f"asked for k={request.k} — omit k to read the existing "
                    "ranking, or create a view under another name"
                )
            if budget is not None:
                # Time spent waiting on the writer lane (view creation) counts
                # against the deadline too.
                budget.check("read")
            answers = snapshot.answers_for(sv, request.tenant, budget=budget)
            degraded = budget is not None and budget.truncated
            with trace.span("paginate"):
                if request.limit is not None:
                    answers = answers[: request.limit]
                page_size = (
                    request.page_size
                    if request.page_size is not None
                    else self._service.config.default_page_size
                )
        with self._stats_lock:
            self._reads_served += 1
            if degraded:
                self._reads_degraded += 1
        read_trace = self.obs.finish_read(
            trace,
            view_id=sv.view_id,
            view_name=sv.name,
            tenant=request.tenant,
            snapshot_id=snapshot.snapshot_id,
            degraded=degraded,
        )
        return ReadResult(
            view_id=sv.view_id,
            view_name=sv.name,
            snapshot_id=snapshot.snapshot_id,
            tenant=request.tenant,
            answers=answers,
            page_size=page_size,
            degraded=degraded,
            trace=read_trace,
        )

    def _ensure_view(self, request: QueryRequest) -> ViewInfo:
        name = request.name or " ".join(request.keywords)
        create = QueryRequest(keywords=request.keywords, k=request.k, name=name)

        def fn() -> ViewInfo:
            # Two readers may race to create the same view; the second
            # becomes a cheap no-op in the writer lane.
            if self._service.views.find_by_name(name) is not None:
                return self._service.prepare_view(name)
            return self._service.create_view(create, materialize=False)

        return self._enqueue(fn, "create_view", name).result()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def submit_feedback(
        self, request: FeedbackRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue one feedback application (base weights or tenant overlay)."""

        def fn():
            # Generalization must run against trees solved under the
            # current weights — writer-lane prepare, never a reader's.
            self._service.prepare_view(request.view)
            return self._service.feedback(request)

        return self._enqueue(fn, "feedback", tag)

    def feedback(self, request: FeedbackRequest, tag: Optional[str] = None):
        return self.submit_feedback(request, tag=tag).result()

    def submit_register(
        self, request: RegisterSourceRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue a source registration."""
        return self._enqueue(
            lambda: self._service.register_source(request),
            "register",
            tag if tag is not None else request.source.name,
        )

    def register(self, request: RegisterSourceRequest, tag: Optional[str] = None):
        return self.submit_register(request, tag=tag).result()

    def submit_remove(self, name: str, tag: Optional[str] = None) -> Future:
        """Queue a source removal."""
        return self._enqueue(
            lambda: self._service.remove_source(name),
            "remove",
            tag if tag is not None else name,
        )

    def remove(self, name: str, tag: Optional[str] = None):
        return self.submit_remove(name, tag=tag).result()

    def submit_create_view(
        self, request: QueryRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue explicit view creation (reads auto-create on demand too)."""
        return self._enqueue(
            lambda: self._service.create_view(request, materialize=False),
            "create_view",
            tag if tag is not None else (request.name or " ".join(request.keywords)),
        )

    def create_view(self, request: QueryRequest, tag: Optional[str] = None) -> ViewInfo:
        return self.submit_create_view(request, tag=tag).result()

    def submit_mutation(
        self,
        fn: Callable[[], object],
        kind: str = "custom",
        tag: Optional[str] = None,
        op_key: Optional[str] = None,
    ) -> Future:
        """Queue an arbitrary mutation of the underlying service.

        ``fn`` runs in the writer lane with full mutation rights; a new
        snapshot publishes after it returns.  This is the extension point
        for administrative operations (and for tests that need to hold the
        writer lane busy).  ``op_key`` overrides the auto-generated
        idempotency key — resubmitting with the same key after an ambiguous
        failure is guaranteed at-most-once application.
        """
        return self._enqueue(fn, kind, tag, op_key=op_key)

    def _enqueue(
        self,
        fn: Callable[[], object],
        kind: str,
        tag: Optional[str],
        op_key: Optional[str] = None,
    ) -> Future:
        self._check_open()
        with self._stats_lock:
            degraded = self._health != HEALTHY
            fault = self._last_fault
        if degraded:
            with self._stats_lock:
                self._writes_rejected += 1
            raise ServiceUnavailableError(
                f"server is in degraded read-only mode (cause: {fault}); "
                "call recover() before writing"
            )
        if op_key is None:
            op_key = f"{self._op_prefix}-{next(self._op_seq)}"
        op = _WriteOp(fn, kind, tag, op_key=op_key)
        op.enqueued_s = self.obs.tracer.clock()
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            with self._stats_lock:
                self._writes_rejected += 1
            raise ServiceOverloadedError(
                pending=self._queue.qsize(), limit=self.write_queue_limit
            ) from None
        with self._stats_lock:
            self._writes_admitted += 1
        return op.future

    def _writer_loop(self) -> None:
        while True:
            op = self._queue.get()
            if op is _SENTINEL:
                break
            if not op.future.set_running_or_notify_cancel():
                # Cancelled while queued (op.cancel()); skip silently.
                with self._stats_lock:
                    self._writes_cancelled += 1
                continue
            with self._stats_lock:
                degraded = self._health != HEALTHY
                fault = self._last_fault
            if degraded:
                # Ops admitted in the race window around a degrade fail
                # fast, exactly like ops that were queued behind the fault.
                with self._stats_lock:
                    self._writes_failed += 1
                op.future.set_exception(
                    ServiceUnavailableError(
                        f"server degraded to read-only after a storage "
                        f"failure: {fault}"
                    )
                )
                continue
            trace = self.obs.tracer.trace("write")
            try:
                with trace:
                    if trace.enabled:
                        trace.record_span(
                            "queue_wait", op.enqueued_s, self.obs.tracer.clock()
                        )
                    try:
                        with trace.span("apply"):
                            result = self._apply_with_retry(op)
                    except (KeyboardInterrupt, SystemExit) as exc:
                        # Interpreter-level interrupts must not be swallowed:
                        # fail the in-flight op, degrade (failing queued
                        # ops), then let the interrupt kill the writer.
                        with self._stats_lock:
                            self._writes_failed += 1
                        op.future.set_exception(exc)
                        self._degrade(exc)
                        raise
                    except BaseException as exc:
                        # A failed write publishes nothing: no snapshot, no
                        # log entry — readers never see any partial effect it
                        # may have had beyond the service's own exception
                        # guarantees.
                        with self._stats_lock:
                            self._writes_failed += 1
                        op.future.set_exception(exc)
                        if self._is_fatal_storage_failure(exc):
                            self._degrade(exc)
                        continue
                    self.write_log.append((op.kind, op.tag))
                    try:
                        self._publish()
                    except (KeyboardInterrupt, SystemExit) as exc:
                        op.future.set_exception(exc)
                        self._degrade(exc)
                        raise
                    except BaseException as exc:
                        # Supervision: a snapshot-capture failure means the
                        # publish pipeline is suspect — fail the op and
                        # degrade rather than silently serving a stale
                        # snapshot as if the write landed.
                        with self._stats_lock:
                            self._writes_failed += 1
                        op.future.set_exception(exc)
                        self._degrade(exc)
                        continue
                    # Publish-before-complete: once the caller sees the
                    # future resolve, every subsequent read is guaranteed a
                    # snapshot that includes this write.
                    op.future.set_result(result)
            finally:
                self.obs.finish_write(trace, op.kind)

    def _apply_with_retry(self, op: _WriteOp):
        """Run one write, retrying transient storage faults with backoff.

        At-most-once semantics ride on the op's idempotency key: the
        service records the key the moment the mutation lands in memory
        (before its autosave), so an attempt that fails *after* that point
        — e.g. a journal append hitting a locked database — is not
        re-applied; the retry just returns.  For attempts that failed
        *before* landing, the process-global edge-id counter is rewound so
        the retry allocates identical edge ids: retries stay invisible to
        tree signatures, snapshots, and the isolation oracle's replay.
        """
        service = self._service
        policy = self._retry_policy
        delays = policy.delays_s()
        idempotent = op.op_key is not None and hasattr(service, "op_applied")
        while True:
            if idempotent and service.op_applied(op.op_key):
                return service.op_result(op.op_key)
            saved_edge_counter = edge_id_counter()
            if idempotent:
                service.begin_op(op.op_key)
            try:
                result = op.fn()
            except Exception as exc:
                classified = classify_storage_error(exc)
                if not is_transient(classified):
                    raise
                try:
                    delay = next(delays)
                except StopIteration:
                    # Retries exhausted: surface the transient classification
                    # (original failure on __cause__) and fail this op only —
                    # the condition is by definition expected to clear, so
                    # the server stays healthy for later writes.  Re-raise
                    # the *failure*, never the StopIteration.
                    if classified is exc:
                        raise exc
                    raise classified from exc
                if not (idempotent and service.op_applied(op.op_key)):
                    set_edge_id_counter(saved_edge_counter)
                with self._stats_lock:
                    self._writes_retried += 1
                active_trace().tally("retry_attempts")
                with active_trace().span("retry_backoff"):
                    policy.sleep(delay)
            else:
                if idempotent:
                    service.record_op_result(op.op_key, result)
                return result
            finally:
                if idempotent:
                    service.end_op()

    def _publish(self) -> None:
        trace = active_trace()
        # All structurally stale views re-expand here, in the single writer
        # thread — query-graph expansion consumes process-global edge ids,
        # so it must never run on a concurrent reader.
        with trace.span("prepare_views"):
            self._service.prepare_views(structural_only=True)
        with self._stats_lock:
            self._writes_applied += 1
            snapshot_id = self._writes_applied
        with trace.span("snapshot_capture"):
            self._snapshot = ReadSnapshot.capture(
                self._service,
                snapshot_id,
                previous=self._snapshot,
                counters=self._counters,
            )
        self._last_publish_monotonic = time.monotonic()
        with self._stats_lock:
            self._snapshots_published += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ServerClosedError()

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain pending writes, stop both lanes.  Idempotent.

        Without ``timeout`` (the default), blocks until every admitted
        write is applied — their futures resolve — exactly like before.
        With a ``timeout`` (seconds), waits at most that long for the
        writer to drain; writes still queued when it elapses fail with
        :class:`~repro.exceptions.ServerClosedError` so no caller blocks
        forever behind a wedged writer.  Returns ``True`` when the writer
        drained cleanly, ``False`` when the timeout elapsed first.  The
        underlying service stays open — closing the session itself remains
        the caller's job.
        """
        with self._close_lock:
            already = self._closed
            self._closed = True
        if already:
            return not self._writer.is_alive()
        if timeout is None:
            # Unbounded close: wait for queue space like the writer's
            # callers do — the writer is draining, so this always lands.
            self._queue.put(_SENTINEL)
        else:
            try:
                self._queue.put(_SENTINEL, timeout=timeout)
            except queue.Full:
                # Queue saturated behind a wedged writer; the drain below
                # fails the queued ops and re-posts the sentinel.
                pass
        self._writer.join(timeout)
        clean = not self._writer.is_alive()
        if not clean:
            failed = self._drain_queue(lambda: ServerClosedError(
                "QServer closed before this write was applied"
            ))
            if failed:
                with self._stats_lock:
                    self._writes_failed += failed
            try:
                self._queue.put_nowait(_SENTINEL)
            except queue.Full:  # pragma: no cover - refilled mid-drain
                pass
        self._read_pool.shutdown(wait=True)
        return clean

    def __enter__(self) -> "QServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
