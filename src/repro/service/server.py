"""Concurrent multi-tenant serving front end over one :class:`QService`.

:class:`QServer` splits the service's traffic into two lanes:

* **Reads** — queries, answer streams, stats — run concurrently on a thread
  pool.  Each read grabs the current :class:`~repro.service.snapshots.ReadSnapshot`
  reference once and answers entirely against it, so reads never block on
  writes, never observe a half-applied mutation, and two reads of the same
  (view, tenant) on one snapshot share a single solve.
* **Writes** — feedback, source registration/removal, view creation — are
  serialized through one bounded queue drained by a single writer thread.
  After each *successful* write the writer re-expands structurally stale
  views (so all edge-id-consuming expansion happens in the writer lane) and
  publishes a fresh snapshot **before** completing the write's future: by
  the time a caller observes its write finished, every new read sees it.

The queue bound is the backpressure contract: when ``write_queue_limit``
writes are already pending, further writes fail fast with
:class:`~repro.exceptions.ServiceOverloadedError` instead of queuing
unboundedly — readers are unaffected (they never enter the queue), and
admitted writes retain FIFO fairness.  A failed write publishes nothing:
its snapshot never exists, and its future carries the exception.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..datastore.provenance import AnswerTuple
from ..exceptions import InvalidRequestError, ServiceOverloadedError
from ..api.streaming import paginate
from ..api.types import (
    AnswerPage,
    FeedbackRequest,
    QueryRequest,
    RegisterSourceRequest,
    ViewInfo,
)
from .snapshots import ReadSnapshot, SnapshotCounters

_SENTINEL = object()


@dataclass(frozen=True)
class ReadResult:
    """One snapshot-isolated query answer: the data plus its provenance.

    ``snapshot_id`` identifies the exact service state (= number of writes
    applied before capture) the answers were priced and executed against —
    the handle the load harness's isolation oracle replays.
    """

    view_id: str
    view_name: str
    snapshot_id: int
    tenant: Optional[str]
    answers: Tuple[AnswerTuple, ...]
    page_size: int

    def pages(self) -> Iterator[AnswerPage]:
        """The answers re-chunked into the service's page shape."""
        return paginate(self.answers, self.view_id, self.page_size)

    def __len__(self) -> int:
        return len(self.answers)


@dataclass(frozen=True)
class ServerStats:
    """Aggregate counters of one serving front end."""

    snapshot_id: int
    reads_served: int
    writes_applied: int
    writes_failed: int
    writes_rejected: int
    snapshots_published: int
    pinned_materializations: int
    pinned_carryovers: int
    queue_depth: int
    read_workers: int
    write_queue_limit: int


class _WriteOp:
    __slots__ = ("fn", "kind", "tag", "future")

    def __init__(self, fn: Callable[[], object], kind: str, tag: Optional[str]) -> None:
        self.fn = fn
        self.kind = kind
        self.tag = tag
        self.future: Future = Future()


class QServer:
    """Thread-pooled, snapshot-isolated serving layer over a session.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.QService` to serve.  The server owns
        its mutation discipline from construction on: apply writes through
        the server, not directly on the service.
    read_workers:
        Size of the concurrent read pool; ``0`` = one per CPU.  Defaults to
        ``service.config.read_workers``.
    write_queue_limit:
        Bound of the single-writer mutation queue.  Defaults to
        ``service.config.write_queue_limit``.

    Every read/write has a ``submit_*`` form returning a
    :class:`concurrent.futures.Future` (asyncio-friendly via
    ``asyncio.wrap_future``) and a blocking convenience form.
    """

    def __init__(
        self,
        service,
        read_workers: Optional[int] = None,
        write_queue_limit: Optional[int] = None,
    ) -> None:
        self._service = service
        workers = (
            read_workers
            if read_workers is not None
            else getattr(service.config, "read_workers", 4)
        )
        if workers == 0:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise InvalidRequestError(f"read_workers must be >= 0, got {workers}")
        limit = (
            write_queue_limit
            if write_queue_limit is not None
            else getattr(service.config, "write_queue_limit", 64)
        )
        if limit < 1:
            raise InvalidRequestError(f"write_queue_limit must be >= 1, got {limit}")
        self.read_workers = workers
        self.write_queue_limit = limit

        self._counters = SnapshotCounters()
        self._stats_lock = threading.Lock()
        self._reads_served = 0
        self._writes_applied = 0
        self._writes_failed = 0
        self._writes_rejected = 0
        self._snapshots_published = 0
        #: ``(kind, tag)`` of every applied write, in apply order — the
        #: exact serial schedule an isolation oracle must replay.
        self.write_log: List[Tuple[str, Optional[str]]] = []

        self._closed = False
        self._close_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue(maxsize=limit)
        # Initial publish happens before any reader or writer exists, so
        # snapshot 0 is the pristine service state.
        service.prepare_views(structural_only=True)
        self._snapshot = ReadSnapshot.capture(
            service, 0, previous=None, counters=self._counters
        )
        self._snapshots_published = 1
        self._read_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qserve-read"
        )
        self._writer = threading.Thread(
            target=self._writer_loop, name="qserve-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def submit_query(self, request: QueryRequest) -> "Future[ReadResult]":
        """Schedule a snapshot-isolated read; returns its future."""
        self._check_open()
        return self._read_pool.submit(self._read, request)

    def query(self, request: QueryRequest) -> ReadResult:
        """Blocking form of :meth:`submit_query`."""
        return self.submit_query(request).result()

    def snapshot(self) -> ReadSnapshot:
        """The currently published snapshot (advanced by each write)."""
        return self._snapshot

    def stats(self) -> ServerStats:
        with self._stats_lock:
            reads = self._reads_served
            applied = self._writes_applied
            failed = self._writes_failed
            rejected = self._writes_rejected
            published = self._snapshots_published
        with self._counters.lock:
            materializations = self._counters.materializations
            carryovers = self._counters.carryovers
        return ServerStats(
            snapshot_id=self._snapshot.snapshot_id,
            reads_served=reads,
            writes_applied=applied,
            writes_failed=failed,
            writes_rejected=rejected,
            snapshots_published=published,
            pinned_materializations=materializations,
            pinned_carryovers=carryovers,
            queue_depth=self._queue.qsize(),
            read_workers=self.read_workers,
            write_queue_limit=self.write_queue_limit,
        )

    def _read(self, request: QueryRequest) -> ReadResult:
        snapshot = self._snapshot
        ref = request.view
        if ref is not None and not isinstance(ref, str):
            raise InvalidRequestError(
                "QServer resolves views by id or name; pass a string reference"
            )
        sv = snapshot.resolve(ref, request.keywords, request.name)
        if sv is None:
            if not request.keywords:
                raise InvalidRequestError(
                    "QueryRequest needs keywords or a view reference"
                )
            # Unknown keywords: view creation is a write.  Route it through
            # the writer lane, then read against the post-create snapshot.
            info = self._ensure_view(request)
            snapshot = self._snapshot
            sv = snapshot.resolve(info.view_id, (), None)
            if sv is None:  # pragma: no cover - a concurrent remove raced us
                raise InvalidRequestError(
                    f"view {info.view_id} vanished before its first read"
                )
        if request.k is not None and sv.k != request.k:
            raise InvalidRequestError(
                f"view {sv.name!r} ({sv.view_id}) has k={sv.k}; the request "
                f"asked for k={request.k} — omit k to read the existing "
                "ranking, or create a view under another name"
            )
        answers = snapshot.answers_for(sv, request.tenant)
        if request.limit is not None:
            answers = answers[: request.limit]
        page_size = (
            request.page_size
            if request.page_size is not None
            else self._service.config.default_page_size
        )
        with self._stats_lock:
            self._reads_served += 1
        return ReadResult(
            view_id=sv.view_id,
            view_name=sv.name,
            snapshot_id=snapshot.snapshot_id,
            tenant=request.tenant,
            answers=answers,
            page_size=page_size,
        )

    def _ensure_view(self, request: QueryRequest) -> ViewInfo:
        name = request.name or " ".join(request.keywords)
        create = QueryRequest(keywords=request.keywords, k=request.k, name=name)

        def fn() -> ViewInfo:
            # Two readers may race to create the same view; the second
            # becomes a cheap no-op in the writer lane.
            if self._service.views.find_by_name(name) is not None:
                return self._service.prepare_view(name)
            return self._service.create_view(create, materialize=False)

        return self._enqueue(fn, "create_view", name).result()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def submit_feedback(
        self, request: FeedbackRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue one feedback application (base weights or tenant overlay)."""

        def fn():
            # Generalization must run against trees solved under the
            # current weights — writer-lane prepare, never a reader's.
            self._service.prepare_view(request.view)
            return self._service.feedback(request)

        return self._enqueue(fn, "feedback", tag)

    def feedback(self, request: FeedbackRequest, tag: Optional[str] = None):
        return self.submit_feedback(request, tag=tag).result()

    def submit_register(
        self, request: RegisterSourceRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue a source registration."""
        return self._enqueue(
            lambda: self._service.register_source(request),
            "register",
            tag if tag is not None else request.source.name,
        )

    def register(self, request: RegisterSourceRequest, tag: Optional[str] = None):
        return self.submit_register(request, tag=tag).result()

    def submit_remove(self, name: str, tag: Optional[str] = None) -> Future:
        """Queue a source removal."""
        return self._enqueue(
            lambda: self._service.remove_source(name),
            "remove",
            tag if tag is not None else name,
        )

    def remove(self, name: str, tag: Optional[str] = None):
        return self.submit_remove(name, tag=tag).result()

    def submit_create_view(
        self, request: QueryRequest, tag: Optional[str] = None
    ) -> Future:
        """Queue explicit view creation (reads auto-create on demand too)."""
        return self._enqueue(
            lambda: self._service.create_view(request, materialize=False),
            "create_view",
            tag if tag is not None else (request.name or " ".join(request.keywords)),
        )

    def create_view(self, request: QueryRequest, tag: Optional[str] = None) -> ViewInfo:
        return self.submit_create_view(request, tag=tag).result()

    def submit_mutation(
        self, fn: Callable[[], object], kind: str = "custom", tag: Optional[str] = None
    ) -> Future:
        """Queue an arbitrary mutation of the underlying service.

        ``fn`` runs in the writer lane with full mutation rights; a new
        snapshot publishes after it returns.  This is the extension point
        for administrative operations (and for tests that need to hold the
        writer lane busy).
        """
        return self._enqueue(fn, kind, tag)

    def _enqueue(self, fn: Callable[[], object], kind: str, tag: Optional[str]) -> Future:
        self._check_open()
        op = _WriteOp(fn, kind, tag)
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            with self._stats_lock:
                self._writes_rejected += 1
            raise ServiceOverloadedError(
                pending=self._queue.qsize(), limit=self.write_queue_limit
            ) from None
        return op.future

    def _writer_loop(self) -> None:
        while True:
            op = self._queue.get()
            if op is _SENTINEL:
                break
            if not op.future.set_running_or_notify_cancel():
                continue
            try:
                result = op.fn()
            except BaseException as exc:
                # A failed write publishes nothing: no snapshot, no log
                # entry — readers never see any partial effect it may have
                # had beyond the service's own exception guarantees.
                with self._stats_lock:
                    self._writes_failed += 1
                op.future.set_exception(exc)
                continue
            self.write_log.append((op.kind, op.tag))
            try:
                self._publish()
            except BaseException as exc:  # pragma: no cover - capture bug
                op.future.set_exception(exc)
                continue
            # Publish-before-complete: once the caller sees the future
            # resolve, every subsequent read is guaranteed a snapshot that
            # includes this write.
            op.future.set_result(result)

    def _publish(self) -> None:
        # All structurally stale views re-expand here, in the single writer
        # thread — query-graph expansion consumes process-global edge ids,
        # so it must never run on a concurrent reader.
        self._service.prepare_views(structural_only=True)
        with self._stats_lock:
            self._writes_applied += 1
            snapshot_id = self._writes_applied
        self._snapshot = ReadSnapshot.capture(
            self._service,
            snapshot_id,
            previous=self._snapshot,
            counters=self._counters,
        )
        with self._stats_lock:
            self._snapshots_published += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InvalidRequestError("QServer is closed")

    def close(self) -> None:
        """Drain pending writes, stop both lanes.  Idempotent.

        Writes already admitted to the queue are applied before the writer
        stops (their futures resolve); the underlying service stays open —
        closing the session itself remains the caller's job.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SENTINEL)
        self._writer.join()
        self._read_pool.shutdown(wait=True)

    def __enter__(self) -> "QServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
