"""Copy-on-publish read snapshots for the concurrent serving layer.

The lazy service already pins every view to a ``(weights.version,
structure_version)`` staleness key; this module turns that pinning into
real *snapshot objects*.  After each applied mutation the single writer
captures a :class:`ReadSnapshot`: a frozen copy of the weight vector, the
set of registered views (each holding its immutable query-graph expansion),
and the per-tenant overlay shadows at that instant.  Readers grab the
current snapshot reference once and answer entirely against it, so a query
never blocks on a registration and never observes a half-applied mutation —
the next snapshot simply replaces the reference.

What makes the frozen state cheap is that everything heavyweight is shared
structurally, never copied:

* node/edge objects are immutable once published (the search graph's
  association merge is copy-on-write), so a snapshot's graphs share them;
* a view's query-graph object is replaced wholesale on re-expansion, never
  mutated, so the snapshot can hold the object itself;
* the weight copy is one dict copy, and tenant shadows are sparse deltas.

Reads *materialize at most once* per (view, tenant) per snapshot: the first
reader builds a transient :class:`~repro.core.view.RankedView` priced under
the frozen weights (or the tenant's frozen overlay) and publishes the
materialized answer tuple under a per-entry event; concurrent readers of
the same key wait for it instead of re-solving.  When a mutation could not
have changed a (view, tenant) ranking — e.g. tenant feedback for a
*different* tenant — the next snapshot carries the materialized answers
over instead of recomputing them.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from ..core.view import RankedView
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..exceptions import UnknownViewError
from ..faults.budget import Budget
from ..graph.features import WeightVector
from ..graph.query_graph import QueryGraph
from ..learning.overlays import OverlayWeightVector, graph_with_weights
from ..obs.tracing import active_trace


class SnapshotView:
    """One view as captured by a snapshot: immutable expansion + ranking key."""

    __slots__ = ("view_id", "name", "keywords", "k", "query_graph")

    def __init__(
        self,
        view_id: str,
        name: str,
        keywords: Tuple[str, ...],
        k: int,
        query_graph: QueryGraph,
    ) -> None:
        self.view_id = view_id
        self.name = name
        self.keywords = keywords
        self.k = k
        #: The live view's expansion *object* at capture time.  Expansions
        #: are replaced wholesale on rebuild (never mutated in place), so
        #: holding the object pins exactly the structure this snapshot saw.
        self.query_graph = query_graph


class SnapshotCounters:
    """Materialization/carry-over totals shared across a server's snapshots.

    Per-snapshot counts die with their snapshot; the server hands every
    capture the same counters object so totals stay exact even for reads
    that land on an already-retired snapshot.
    """

    __slots__ = ("lock", "materializations", "carryovers")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.materializations = 0
        self.carryovers = 0


class _PinnedRead:
    """Materialization slot for one (view, tenant) on one snapshot."""

    __slots__ = ("event", "answers", "error", "carry_key")

    def __init__(self, carry_key: Tuple[object, int]) -> None:
        self.event = threading.Event()
        self.answers: Optional[Tuple[AnswerTuple, ...]] = None
        self.error: Optional[BaseException] = None
        #: (query-graph object, effective weights version) the answers are
        #: valid for; the next snapshot carries the entry over iff its own
        #: key for the same (view, tenant) is identical.
        self.carry_key = carry_key


class ReadSnapshot:
    """An immutable view of one service state, safe for concurrent reads."""

    def __init__(
        self,
        snapshot_id: int,
        catalog,
        weights: WeightVector,
        weights_version: int,
        structure_version: int,
        views: Dict[str, SnapshotView],
        names: Dict[str, str],
        tenants: Dict[str, Tuple[Dict[str, float], int]],
        context: ExecutionContext,
        answer_limit: Optional[int],
        counters: Optional[SnapshotCounters] = None,
    ) -> None:
        self.snapshot_id = snapshot_id
        self.catalog = catalog
        self.weights = weights
        self.weights_version = weights_version
        self.structure_version = structure_version
        self.views = views
        self.names = names
        self.tenants = tenants
        self.context = context
        self.answer_limit = answer_limit
        self._pinned: Dict[Tuple[str, Optional[str]], _PinnedRead] = {}
        self._lock = threading.Lock()
        self._counters = counters
        #: Materializations and carry-overs observed on this snapshot alone
        #: (``counters``, when given, accumulates the cross-snapshot totals).
        self.materializations = 0
        self.carryovers = 0

    # ------------------------------------------------------------------
    # Capture / publish
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        service,
        snapshot_id: int,
        previous: Optional["ReadSnapshot"] = None,
        counters: Optional[SnapshotCounters] = None,
    ) -> "ReadSnapshot":
        """Freeze ``service``'s current state (writer lane only).

        The caller must have completed all structural view preparation
        (:meth:`~repro.api.service.QService.prepare_views`) first, so every
        captured query graph reflects the current graph structure.
        """
        weights_version = service.graph.weights.version
        structure_version = service.graph.structure_version
        frozen = service.graph.weights.copy()
        # WeightVector.copy() resets the mutation counter; restore it so
        # version-keyed caches (Steiner networks, view solve states) treat
        # the frozen vector exactly like the live one it mirrors.
        frozen.version = weights_version

        views: Dict[str, SnapshotView] = {}
        names: Dict[str, str] = {}
        for record in service.views.records():
            view = record.view
            sv = SnapshotView(
                view_id=record.view_id,
                name=record.name,
                keywords=tuple(view.keywords),
                k=view.k,
                query_graph=view.query_graph,
            )
            views[record.view_id] = sv
            names[record.name] = record.view_id

        tenants = {
            name: (
                service.tenants.overlay(name).shadow_dict(),
                service.tenants.overlay(name).local_version,
            )
            for name in service.tenants.names()
        }

        # Scan/join caches survive weight-only mutations (they cache joined
        # rows, not costs); a structural change starts from a fresh context
        # exactly like the live service's registration invalidation.  The
        # fresh context shares the live session's statistics sheet and
        # Steiner-network cache, so snapshot-lane pushdowns and solves land
        # on the same registry gauges as direct service reads.
        if previous is not None and previous.structure_version == structure_version:
            context = previous.context
        else:
            live = getattr(service, "engine_context", None)
            context = ExecutionContext(
                service.catalog,
                statistics=getattr(live, "statistics", None),
                steiner_cache=getattr(live, "steiner_cache", None),
            )

        snapshot = cls(
            snapshot_id=snapshot_id,
            catalog=service.catalog,
            weights=frozen,
            weights_version=weights_version,
            structure_version=structure_version,
            views=views,
            names=names,
            tenants=tenants,
            context=context,
            answer_limit=service.config.answer_limit,
            counters=counters,
        )
        if previous is not None:
            snapshot._carry_over(previous)
        return snapshot

    def _carry_over(self, previous: "ReadSnapshot") -> None:
        """Adopt still-valid materialized answers from the prior snapshot."""
        with previous._lock:
            entries = dict(previous._pinned)
        for (view_id, tenant), entry in entries.items():
            if not entry.event.is_set() or entry.error is not None:
                continue
            sv = self.views.get(view_id)
            if sv is None:
                continue
            if entry.carry_key == self._carry_key(sv, tenant):
                carried = _PinnedRead(entry.carry_key)
                carried.answers = entry.answers
                carried.event.set()
                self._pinned[(view_id, tenant)] = carried
                self.carryovers += 1
                if self._counters is not None:
                    with self._counters.lock:
                        self._counters.carryovers += 1

    def _carry_key(self, sv: SnapshotView, tenant: Optional[str]) -> Tuple[object, int]:
        return (sv.query_graph, self._effective_version(tenant))

    def _effective_version(self, tenant: Optional[str]) -> int:
        if tenant is None:
            return self.weights_version
        _, local_version = self.tenants.get(tenant, ({}, 0))
        return self.weights_version + local_version

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, ref: Optional[str], keywords: Tuple[str, ...], name: Optional[str]) -> Optional[SnapshotView]:
        """The snapshot view a query request addresses, or ``None``.

        ``ref`` may be a view id or a view name (the same strings the live
        registry resolves); with no ``ref``, the request's explicit name or
        joined keywords are looked up.  Returns ``None`` when the view does
        not exist *on this snapshot* — the server then routes view creation
        through the writer lane.
        """
        if ref is not None:
            sv = self.views.get(ref)
            if sv is not None:
                return sv
            view_id = self.names.get(ref)
            if view_id is not None:
                return self.views.get(view_id)
            raise UnknownViewError(ref, tuple(self.names))
        if not keywords:
            return None
        lookup = name or " ".join(keywords)
        view_id = self.names.get(lookup)
        return self.views.get(view_id) if view_id is not None else None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def answers_for(
        self,
        sv: SnapshotView,
        tenant: Optional[str] = None,
        budget: Optional[Budget] = None,
    ) -> Tuple[AnswerTuple, ...]:
        """Materialized ranked answers of one view under one tenant's weights.

        Solved and executed at most once per (view, tenant) on this
        snapshot; concurrent readers of the same key wait on the first
        reader's event instead of duplicating the work.

        A deadline-bearing read (``budget`` given) never *creates* a pinned
        slot: a budget can truncate the materialization, and a partial
        answer set must not become the answers every later reader of this
        (view, tenant) receives — nor an entry the next snapshot carries
        over.  It reuses an already-completed slot for free, and otherwise
        materializes privately under its budget.
        """
        key = (sv.view_id, tenant)
        trace = active_trace()
        if budget is not None:
            with self._lock:
                entry = self._pinned.get(key)
            if entry is not None and entry.event.is_set() and entry.error is None:
                assert entry.answers is not None
                trace.annotate_once("path", "cached")
                return entry.answers
            with trace.span("materialize"):
                return self._materialize(sv, tenant, budget=budget)
        with self._lock:
            entry = self._pinned.get(key)
            creator = entry is None
            if creator:
                entry = _PinnedRead(self._carry_key(sv, tenant))
                self._pinned[key] = entry
                self.materializations += 1
        if creator and self._counters is not None:
            with self._counters.lock:
                self._counters.materializations += 1
        if creator:
            try:
                with trace.span("materialize"):
                    entry.answers = self._materialize(sv, tenant)
            except BaseException as exc:  # propagate to every waiter
                entry.error = exc
                raise
            finally:
                entry.event.set()
        elif entry.event.is_set():
            # The slot was materialized (or carried over) before this read:
            # a pure cache replay, no waiting involved.
            trace.annotate_once("path", "cached")
            if entry.error is not None:
                raise entry.error
        else:
            # A concurrent reader is materializing the same (view, tenant);
            # this read shares its result.
            trace.annotate_once("path", "shared")
            with trace.span("wait_shared"):
                entry.event.wait()
            if entry.error is not None:
                raise entry.error
        assert entry.answers is not None
        return entry.answers

    def _materialize(
        self,
        sv: SnapshotView,
        tenant: Optional[str],
        budget: Optional[Budget] = None,
    ) -> Tuple[AnswerTuple, ...]:
        weights = self._weights_for(tenant)
        frozen_qg = QueryGraph(
            graph=graph_with_weights(sv.query_graph.graph, weights),
            keyword_nodes=dict(sv.query_graph.keyword_nodes),
            matches=list(sv.query_graph.matches),
        )
        view = RankedView(
            list(sv.keywords),
            self.catalog,
            frozen_qg.graph,
            k=sv.k,
            answer_limit=self.answer_limit,
            engine_context=self.context,
            query_graph=frozen_qg,
        )
        return tuple(view.stream_answers(budget=budget))

    def _weights_for(self, tenant: Optional[str]) -> WeightVector:
        if tenant is None:
            return self.weights
        shadow, local_version = self.tenants.get(tenant, ({}, 0))
        # A tenant unseen at capture time reads base-ranked answers (an
        # empty overlay) — exactly what its first live read would see.
        return OverlayWeightVector(self.weights, shadow=shadow, local_version=local_version)

    def pinned_count(self) -> int:
        """How many (view, tenant) materialization slots exist."""
        with self._lock:
            return len(self._pinned)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadSnapshot(id={self.snapshot_id}, views={len(self.views)}, "
            f"w={self.weights_version}, s={self.structure_version})"
        )
