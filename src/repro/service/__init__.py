"""Concurrent multi-tenant serving layer (see README "Serving & multi-tenancy").

Public API
----------
* :class:`QServer` — thread-pooled front end over one
  :class:`~repro.api.service.QService`: concurrent snapshot-isolated reads,
  a bounded single-writer mutation queue with
  :class:`~repro.exceptions.ServiceOverloadedError` backpressure, and
  per-tenant weight-overlay ranking.
* :class:`ReadResult` / :class:`ServerStats` — read answers with snapshot
  provenance (each carrying its :class:`~repro.obs.tracing.ReadTrace`
  timing breakdown when observability is on); aggregate serving counters.
* :class:`ReadSnapshot` / :class:`SnapshotView` — the copy-on-publish
  frozen states reads run against.
"""

from .server import QServer, ReadResult, ServerStats
from .snapshots import ReadSnapshot, SnapshotCounters, SnapshotView

__all__ = [
    "QServer",
    "ReadResult",
    "ReadSnapshot",
    "ServerStats",
    "SnapshotCounters",
    "SnapshotView",
]
