"""Value-overlap matcher and filter.

Two roles:

* :class:`ValueOverlapMatcher` — a simple instance-based matcher scoring
  attribute pairs by the containment of their distinct value sets.  Used as
  an extra ensemble component and in tests as a sanity baseline.
* :class:`ValueOverlapFilter` — the "Value Overlap Filter" of the Figure 7
  experiment: given a content index, only attribute pairs that share at
  least one value (and hence could join) are compared at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datastore.indexes import ValueIndex
from ..datastore.table import Table
from ..similarity.jaccard import max_containment
from .base import AttributeRef, BaseMatcher, Correspondence


class ValueOverlapMatcher(BaseMatcher):
    """Scores attribute pairs by the overlap of their distinct values."""

    name = "value_overlap"

    def __init__(self, min_confidence: float = 0.1, min_shared_values: int = 1) -> None:
        super().__init__()
        self.min_confidence = min_confidence
        self.min_shared_values = min_shared_values

    def match_relations(self, table_a: Table, table_b: Table) -> List[Correspondence]:
        """Align attributes of two relations by distinct-value containment."""
        relation_a = table_a.schema.qualified_name
        relation_b = table_b.schema.qualified_name
        if relation_a == relation_b:
            return []
        self.counter.record_relation_pair(
            len(table_a.schema.attribute_names), len(table_b.schema.attribute_names)
        )
        correspondences: List[Correspondence] = []
        for attr_a in table_a.schema.attribute_names:
            values_a = table_a.distinct_values(attr_a)
            if not values_a:
                continue
            for attr_b in table_b.schema.attribute_names:
                values_b = table_b.distinct_values(attr_b)
                if not values_b:
                    continue
                shared = len(values_a & values_b)
                if shared < self.min_shared_values:
                    continue
                confidence = max_containment(values_a, values_b)
                if confidence < self.min_confidence:
                    continue
                correspondences.append(
                    Correspondence(
                        source=AttributeRef(relation_a, attr_a),
                        target=AttributeRef(relation_b, attr_b),
                        confidence=round(confidence, 6),
                        matcher=self.name,
                    )
                )
        return correspondences


@dataclass
class ValueOverlapFilter:
    """Prunes attribute comparisons to pairs that share at least one value.

    Mirrors the "Value Overlap Filter" assumption of Figure 7: a content
    index is available for both the existing sources and the new source, so
    comparisons can be restricted to attribute pairs that can actually join.
    """

    index: ValueIndex
    min_shared_values: int = 1

    @classmethod
    def from_tables(cls, tables: Sequence[Table], min_shared_values: int = 1) -> "ValueOverlapFilter":
        """Build a filter by indexing ``tables``."""
        index = ValueIndex()
        for table in tables:
            index.index_table(table)
        return cls(index=index, min_shared_values=min_shared_values)

    def allows(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> bool:
        """Whether the attribute pair shares enough values to be worth comparing."""
        return (
            self.index.overlap(relation_a, attribute_a, relation_b, attribute_b)
            >= self.min_shared_values
        )

    def comparable_pairs(self, table_a: Table, table_b: Table) -> int:
        """Number of attribute pairs of the two relations that pass the filter."""
        relation_a = table_a.schema.qualified_name
        relation_b = table_b.schema.qualified_name
        count = 0
        for attr_a in table_a.schema.attribute_names:
            for attr_b in table_b.schema.attribute_names:
                if self.allows(relation_a, attr_a, relation_b, attr_b):
                    count += 1
        return count
