"""Matcher interfaces and correspondence objects.

Q treats schema matchers as *black boxes* (paper Section 3.2): each matcher
is asked to align the attributes of a pair of relations and returns scored
*correspondences*.  The aligner strategies (Section 3.3) call the matcher
through :meth:`BaseMatcher.match_relations`, and the number of pairwise
attribute comparisons performed is instrumented so that the Figure 7/8
experiments can be reproduced exactly.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..datastore.table import Table
from ..exceptions import UnknownMatcherError


@dataclass(frozen=True)
class AttributeRef:
    """A fully qualified reference to one attribute of one relation."""

    relation: str  # qualified relation name, "<source>.<relation>"
    attribute: str

    @property
    def qualified(self) -> str:
        """``"<source>.<relation>.<attribute>"``."""
        return f"{self.relation}.{self.attribute}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.qualified


@dataclass(frozen=True)
class Correspondence:
    """One proposed alignment between two attributes.

    Attributes
    ----------
    source, target:
        The aligned attributes.  Correspondences are undirected; the
        source/target naming only records which side came from the newly
        registered source when relevant.
    confidence:
        Matcher confidence, normalized to ``[0, 1]``.
    matcher:
        Name of the matcher that produced the correspondence.
    """

    source: AttributeRef
    target: AttributeRef
    confidence: float
    matcher: str

    def key(self) -> Tuple[str, str]:
        """Order-independent identity of the aligned attribute pair."""
        a, b = self.source.qualified, self.target.qualified
        return (a, b) if a <= b else (b, a)

    def reversed(self) -> "Correspondence":
        """The same correspondence with source and target swapped."""
        return replace(self, source=self.target, target=self.source)


class ComparisonCounter:
    """Counts pairwise attribute comparisons (the metric of Figures 7 and 8)."""

    def __init__(self) -> None:
        self.attribute_comparisons = 0
        self.relation_pairs = 0

    def record_relation_pair(self, attributes_a: int, attributes_b: int) -> None:
        """Record one relation-pair alignment of the given attribute arities."""
        self.relation_pairs += 1
        self.attribute_comparisons += attributes_a * attributes_b

    def record_comparisons(self, count: int) -> None:
        """Record ``count`` explicit attribute comparisons."""
        self.attribute_comparisons += count

    def reset(self) -> None:
        """Zero all counters."""
        self.attribute_comparisons = 0
        self.relation_pairs = 0


class BaseMatcher(abc.ABC):
    """Abstract pairwise schema matcher.

    Concrete matchers must implement :meth:`match_relations`; the default
    :meth:`match_source_against` fans a new source's relations out against a
    set of existing relations, which is exactly what ``BASEMATCHER(G', v)``
    does in Algorithms 2 and 3.
    """

    #: Matcher name used for feature names and reporting.
    name: str = "matcher"

    #: Whether scores *change* without the shared profile index attached.
    #: For most matchers the index is a pure cache (profiles and memos
    #: rebuild to identical values from the tables), so process-pool workers
    #: may drop it instead of pickling the whole catalog's postings.  A
    #: matcher whose evidence depends on the index's corpus (e.g. tf-idf
    #: document frequencies) must set this to ``True``.
    index_result_dependent: bool = False

    def __init__(self) -> None:
        self.counter = ComparisonCounter()

    @abc.abstractmethod
    def match_relations(self, table_a: Table, table_b: Table) -> List[Correspondence]:
        """Align the attributes of two relations and return scored correspondences."""

    def match_source_against(
        self, new_tables: Sequence[Table], existing_tables: Sequence[Table]
    ) -> List[Correspondence]:
        """Align every new relation against every existing relation."""
        correspondences: List[Correspondence] = []
        for new_table in new_tables:
            for existing_table in existing_tables:
                correspondences.extend(self.match_relations(new_table, existing_table))
        return correspondences

    def reset_counters(self) -> None:
        """Reset the comparison instrumentation."""
        self.counter.reset()


# ----------------------------------------------------------------------
# Matcher registry
# ----------------------------------------------------------------------
#: Factory producing a fresh matcher instance (matchers carry mutable
#: comparison counters, so shared singletons would corrupt the Figure 7/8
#: instrumentation).
MatcherFactory = Callable[[], "BaseMatcher"]

_MATCHER_REGISTRY: Dict[str, MatcherFactory] = {}


def register_matcher(name: str, factory: MatcherFactory) -> None:
    """Register a matcher factory under its canonical name.

    The name is the dispatch key for requests that reference a matcher by
    string (e.g. ``RegisterSourceRequest(matcher="metadata")``); it should
    equal the matcher class's :attr:`BaseMatcher.name` so that feature names
    in :class:`Correspondence` objects round-trip through the registry.
    """
    _MATCHER_REGISTRY[name] = factory


def available_matchers() -> Tuple[str, ...]:
    """Sorted names of every registered matcher."""
    return tuple(sorted(_MATCHER_REGISTRY))


def resolve_matcher(matcher: Union[str, "BaseMatcher"]) -> "BaseMatcher":
    """Resolve a matcher reference: instances pass through, names dispatch.

    Raises
    ------
    UnknownMatcherError
        If ``matcher`` is a string not present in the registry; the error
        lists the valid options.
    """
    if isinstance(matcher, BaseMatcher):
        return matcher
    factory = _MATCHER_REGISTRY.get(matcher)
    if factory is None:
        raise UnknownMatcherError(matcher, available_matchers())
    return factory()


def top_y_per_attribute(
    correspondences: Iterable[Correspondence],
    y: int,
    min_confidence: float = 0.0,
) -> List[Correspondence]:
    """Keep, for each attribute, its ``y`` highest-confidence correspondences.

    This realizes the paper's "top-Y candidate alignments per attribute"
    (Section 3.2.3): the search graph receives up to Y association edges per
    attribute so that feedback can later suppress a bad alignment and fall
    back to an alternative.
    """
    if y < 1:
        raise ValueError("y must be >= 1")
    by_attribute: Dict[str, List[Correspondence]] = defaultdict(list)
    for correspondence in correspondences:
        if correspondence.confidence < min_confidence:
            continue
        by_attribute[correspondence.source.qualified].append(correspondence)
        by_attribute[correspondence.target.qualified].append(correspondence)

    kept: Dict[Tuple[str, str], Correspondence] = {}
    for attribute, candidates in by_attribute.items():
        candidates.sort(key=lambda c: (-c.confidence, c.key()))
        for correspondence in candidates[:y]:
            key = (correspondence.key(), correspondence.matcher)
            existing = kept.get(key)
            if existing is None or correspondence.confidence > existing.confidence:
                kept[key] = correspondence
    return sorted(kept.values(), key=lambda c: (-c.confidence, c.key()))


def merge_correspondences(
    correspondences: Iterable[Correspondence],
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Group correspondences by attribute pair, keeping per-matcher confidences.

    Returns a mapping ``(attr_a, attr_b) -> {matcher_name: confidence}``
    where the pair key is order-independent.  This is the form consumed by
    :meth:`repro.graph.search_graph.SearchGraph.add_association`.
    """
    merged: Dict[Tuple[str, str], Dict[str, float]] = defaultdict(dict)
    for correspondence in correspondences:
        key = correspondence.key()
        existing = merged[key].get(correspondence.matcher)
        if existing is None or correspondence.confidence > existing:
            merged[key][correspondence.matcher] = correspondence.confidence
    return dict(merged)
