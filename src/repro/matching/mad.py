"""Modified Adsorption (MAD) label propagation and the MAD schema matcher.

Implements Algorithm 1 of the paper (which follows Talukdar & Crammer,
ECML 2009): every attribute node is injected with its own label, labels are
propagated through shared data values, and after convergence each attribute
node's label distribution says how strongly it matches every other
attribute.  A dummy "none of the above" label absorbs probability mass when
the evidence is insufficient.

The random-walk probabilities ``p_inj``, ``p_cont`` and ``p_abnd`` per node
are set with the entropy-based heuristic of the MAD paper, which the authors
also use here ("We used the heuristics from [31] to set the random walk
probabilities", Section 5.2.1).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datastore.table import Table
from .base import AttributeRef, BaseMatcher, Correspondence
from .mad_graph import (
    MadGraphConfig,
    PropagationGraph,
    attribute_graph_node,
    build_column_value_graph,
)

#: The dummy "none of the above" label (written ⊤ in the paper).
DUMMY_LABEL = "__none_of_the_above__"


@dataclass
class RandomWalkProbabilities:
    """Per-node injection / continuation / abandonment probabilities."""

    p_inj: float
    p_cont: float
    p_abnd: float


def compute_walk_probabilities(
    graph: PropagationGraph,
    seed_nodes: Set[str],
    beta: float = 2.0,
) -> Dict[str, RandomWalkProbabilities]:
    """Entropy-based heuristic for the random-walk probabilities.

    For each node ``v`` with transition distribution ``p(u | v)`` proportional
    to edge weights, let ``H(v)`` be its entropy.  Then::

        c_v = log(beta) / log(beta + exp(H(v)))
        d_v = (1 - c_v) * sqrt(H(v))      if v is a seed node, else 0
        z_v = max(c_v + d_v, 1)
        p_cont = c_v / z_v ;  p_inj = d_v / z_v ;  p_abnd = 1 - p_cont - p_inj

    High-degree hub nodes get high entropy, hence low continuation and high
    abandonment probability — exactly the mitigation the paper describes for
    random walks passing through hubs.
    """
    probabilities: Dict[str, RandomWalkProbabilities] = {}
    log_beta = math.log(beta)
    for node in graph.nodes():
        neighbors = graph.neighbors(node)
        total_weight = sum(neighbors.values())
        if total_weight <= 0:
            probabilities[node] = RandomWalkProbabilities(p_inj=1.0, p_cont=0.0, p_abnd=0.0)
            continue
        entropy = 0.0
        for weight in neighbors.values():
            p = weight / total_weight
            if p > 0:
                entropy -= p * math.log(p)
        c_v = log_beta / math.log(beta + math.exp(entropy))
        d_v = (1.0 - c_v) * math.sqrt(entropy) if node in seed_nodes else 0.0
        z_v = max(c_v + d_v, 1.0)
        p_cont = c_v / z_v
        p_inj = d_v / z_v
        p_abnd = max(0.0, 1.0 - p_cont - p_inj)
        probabilities[node] = RandomWalkProbabilities(p_inj=p_inj, p_cont=p_cont, p_abnd=p_abnd)
    return probabilities


@dataclass
class MadConfig:
    """Hyperparameters of the MAD algorithm.

    Defaults follow the paper's experimental setup: ``mu1 = mu2 = 1``,
    ``mu3 = 1e-2``, 3 iterations (with an optional convergence tolerance).
    """

    mu1: float = 1.0
    mu2: float = 1.0
    mu3: float = 1e-2
    max_iterations: int = 3
    tolerance: float = 1e-4
    beta: float = 2.0


LabelDistribution = Dict[str, float]


def run_mad(
    graph: PropagationGraph,
    seed_labels: Mapping[str, LabelDistribution],
    config: Optional[MadConfig] = None,
) -> Dict[str, LabelDistribution]:
    """Run Modified Adsorption over ``graph``.

    Parameters
    ----------
    graph:
        The propagation graph.
    seed_labels:
        Mapping from node id to its injected label distribution ``I_v``.
    config:
        Hyperparameters; see :class:`MadConfig`.

    Returns
    -------
    dict
        Mapping from node id to its estimated label distribution ``L_v``
        (which includes the dummy label's mass).
    """
    config = config or MadConfig()
    seeds = set(seed_labels.keys())
    probabilities = compute_walk_probabilities(graph, seeds, beta=config.beta)

    # R_v: label prior putting all mass on the dummy label.
    # I_v: injected labels (zero vector for non-seed nodes).
    injected: Dict[str, LabelDistribution] = {
        node: dict(seed_labels.get(node, {})) for node in graph.nodes()
    }
    estimates: Dict[str, LabelDistribution] = {
        node: dict(injected[node]) for node in graph.nodes()
    }

    # M_vv normalization terms (line 2 of Algorithm 1).
    normalizers: Dict[str, float] = {}
    for node in graph.nodes():
        prob = probabilities[node]
        weight_sum = sum(graph.neighbors(node).values())
        normalizers[node] = (
            config.mu1 * prob.p_inj + config.mu2 * prob.p_cont * weight_sum + config.mu3
        )

    for _ in range(config.max_iterations):
        max_change = 0.0
        new_estimates: Dict[str, LabelDistribution] = {}
        for node in graph.nodes():
            prob = probabilities[node]
            # D_v: weighted combination of neighbor label estimates (line 4).
            aggregated: LabelDistribution = defaultdict(float)
            for neighbor, weight in graph.neighbors(node).items():
                neighbor_prob = probabilities[neighbor]
                coefficient = prob.p_cont * weight + neighbor_prob.p_cont * weight
                if coefficient == 0.0:
                    continue
                for label, score in estimates[neighbor].items():
                    aggregated[label] += coefficient * score
            # Line 6-7 update.
            updated: LabelDistribution = defaultdict(float)
            for label, score in injected[node].items():
                updated[label] += config.mu1 * prob.p_inj * score
            for label, score in aggregated.items():
                updated[label] += config.mu2 * score
            updated[DUMMY_LABEL] += config.mu3 * prob.p_abnd * 1.0
            normalizer = normalizers[node]
            if normalizer <= 0:
                normalizer = 1.0
            result = {label: score / normalizer for label, score in updated.items() if score != 0.0}
            previous = estimates[node]
            for label in set(result) | set(previous):
                max_change = max(max_change, abs(result.get(label, 0.0) - previous.get(label, 0.0)))
            new_estimates[node] = result
        estimates = new_estimates
        if max_change < config.tolerance:
            break
    return estimates


def normalize_distribution(distribution: LabelDistribution, drop_dummy: bool = True) -> LabelDistribution:
    """Normalize a label distribution to sum to one (optionally dropping the dummy)."""
    items = {
        label: max(score, 0.0)
        for label, score in distribution.items()
        if not (drop_dummy and label == DUMMY_LABEL)
    }
    total = sum(items.values())
    if total <= 0:
        return {}
    return {label: score / total for label, score in items.items()}


class MadMatcher(BaseMatcher):
    """Instance-based schema matcher built on MAD label propagation.

    Unlike pairwise matchers, MAD propagates over *all* relations at once
    (no pairwise source comparison is required — one of its selling points
    in the paper).  The pairwise :meth:`match_relations` interface is still
    provided for interoperability with the aligner strategies: it simply
    restricts a global propagation run to the two relations involved.
    """

    name = "mad"

    def __init__(
        self,
        config: Optional[MadConfig] = None,
        graph_config: Optional[MadGraphConfig] = None,
        top_y: int = 3,
        min_confidence: float = 0.05,
    ) -> None:
        super().__init__()
        self.config = config or MadConfig()
        self.graph_config = graph_config or MadGraphConfig()
        self.top_y = top_y
        self.min_confidence = min_confidence

    # ------------------------------------------------------------------
    # Global (multi-relation) matching
    # ------------------------------------------------------------------
    def propagate(self, tables: Sequence[Table]) -> Dict[str, LabelDistribution]:
        """Run MAD over all ``tables`` and return attribute label distributions.

        The returned mapping is keyed by attribute node id
        (``col::<relation>.<attribute>``); each distribution is normalized
        over attribute labels (the dummy label is dropped).
        """
        graph = build_column_value_graph(tables, self.graph_config)
        seed_labels: Dict[str, LabelDistribution] = {}
        for attr_node, (relation, attribute) in graph.attribute_nodes.items():
            seed_labels[attr_node] = {attr_node: 1.0}
        raw = run_mad(graph, seed_labels, self.config)
        distributions: Dict[str, LabelDistribution] = {}
        for attr_node in graph.attribute_nodes:
            distributions[attr_node] = normalize_distribution(raw.get(attr_node, {}))
        return distributions

    def match_tables(self, tables: Sequence[Table]) -> List[Correspondence]:
        """Produce correspondences between all attribute pairs of ``tables``."""
        distributions = self.propagate(tables)
        node_refs = {
            attribute_graph_node(t.schema.qualified_name, attr): AttributeRef(
                t.schema.qualified_name, attr
            )
            for t in tables
            for attr in t.schema.attribute_names
        }
        correspondences: List[Correspondence] = []
        for attr_node, distribution in distributions.items():
            source_ref = node_refs.get(attr_node)
            if source_ref is None:
                continue
            ranked = sorted(
                (
                    (label, score)
                    for label, score in distribution.items()
                    if label != attr_node and label in node_refs
                ),
                key=lambda item: -item[1],
            )
            for label, score in ranked[: self.top_y]:
                if score < self.min_confidence:
                    continue
                target_ref = node_refs[label]
                if target_ref.relation == source_ref.relation and target_ref.attribute == source_ref.attribute:
                    continue
                correspondences.append(
                    Correspondence(
                        source=source_ref,
                        target=target_ref,
                        confidence=round(min(score, 1.0), 6),
                        matcher=self.name,
                    )
                )
        return correspondences

    # ------------------------------------------------------------------
    # Pairwise interface (for the aligner strategies)
    # ------------------------------------------------------------------
    def match_relations(self, table_a: Table, table_b: Table) -> List[Correspondence]:
        """Pairwise adapter: propagate over just the two relations."""
        if table_a.schema.qualified_name == table_b.schema.qualified_name:
            return []
        self.counter.record_relation_pair(
            len(table_a.schema.attribute_names), len(table_b.schema.attribute_names)
        )
        correspondences = self.match_tables([table_a, table_b])
        relation_a = table_a.schema.qualified_name
        relation_b = table_b.schema.qualified_name
        return [
            c
            for c in correspondences
            if {c.source.relation, c.target.relation} == {relation_a, relation_b}
        ]
