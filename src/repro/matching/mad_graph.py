"""Column–value graph construction for the MAD matcher (paper Section 3.2.2).

The label-propagation graph has one node per relation attribute (labelled
with its canonical attribute name) and one node per *unique data value*,
with an edge between a value node and every attribute node whose column
contains that value.  Following the paper's experimental setup
(Section 5.2.1):

* nodes of degree one are pruned (they cannot contribute to propagation),
* purely numeric values are removed (they induce spurious associations).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datastore.table import Table
from ..datastore.types import ValueType, canonicalize, infer_value_type


def attribute_graph_node(relation: str, attribute: str) -> str:
    """Node id of an attribute node in the MAD graph."""
    return f"col::{relation}.{attribute}"


def value_graph_node(value: str) -> str:
    """Node id of a value node in the MAD graph."""
    return f"val::{value}"


@dataclass
class PropagationGraph:
    """A weighted undirected graph used for label propagation.

    Attributes
    ----------
    weights:
        ``weights[u][v]`` is the edge weight between ``u`` and ``v``;
        symmetric by construction.
    attribute_nodes:
        Mapping from attribute node id to its ``(relation, attribute)``.
    value_nodes:
        The value node ids.
    """

    weights: Dict[str, Dict[str, float]] = field(default_factory=dict)
    attribute_nodes: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    value_nodes: Set[str] = field(default_factory=set)

    def add_edge(self, u: str, v: str, weight: float = 1.0) -> None:
        """Add (or overwrite) the undirected edge ``u -- v``."""
        self.weights.setdefault(u, {})[v] = weight
        self.weights.setdefault(v, {})[u] = weight

    def neighbors(self, node: str) -> Mapping[str, float]:
        """Neighbors of ``node`` with their edge weights."""
        return self.weights.get(node, {})

    def degree(self, node: str) -> int:
        """Number of neighbors of ``node``."""
        return len(self.weights.get(node, {}))

    def nodes(self) -> Tuple[str, ...]:
        """All node ids present in the graph."""
        return tuple(self.weights.keys())

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self.weights)

    @property
    def edge_count(self) -> int:
        """Total number of undirected edges."""
        return sum(len(neighbors) for neighbors in self.weights.values()) // 2

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and its incident edges."""
        for neighbor in list(self.weights.get(node, {})):
            self.weights[neighbor].pop(node, None)
        self.weights.pop(node, None)
        self.attribute_nodes.pop(node, None)
        self.value_nodes.discard(node)


@dataclass
class MadGraphConfig:
    """Options controlling column–value graph construction."""

    prune_degree_one: bool = True
    drop_numeric_values: bool = True
    max_values_per_attribute: Optional[int] = None
    edge_weight: float = 1.0


def build_column_value_graph(
    tables: Sequence[Table], config: Optional[MadGraphConfig] = None
) -> PropagationGraph:
    """Build the MAD column–value graph over ``tables``.

    Parameters
    ----------
    tables:
        The relations to include (typically every table in the catalog plus
        the newly registered source's tables).
    config:
        Construction options; see :class:`MadGraphConfig`.
    """
    config = config or MadGraphConfig()
    graph = PropagationGraph()

    for table in tables:
        relation = table.schema.qualified_name
        for attribute in table.schema.attribute_names:
            attr_node = attribute_graph_node(relation, attribute)
            graph.attribute_nodes[attr_node] = (relation, attribute)
            graph.weights.setdefault(attr_node, {})
            values = table.distinct_values(attribute)
            if config.max_values_per_attribute is not None:
                values = set(sorted(values)[: config.max_values_per_attribute])
            for value in values:
                if config.drop_numeric_values and _is_numeric_value(value):
                    continue
                value_node = value_graph_node(value)
                graph.value_nodes.add(value_node)
                graph.add_edge(attr_node, value_node, config.edge_weight)

    if config.prune_degree_one:
        _prune_degree_one_values(graph)
    return graph


def _is_numeric_value(value: str) -> bool:
    vtype = infer_value_type(value)
    return vtype.is_numeric()


def _prune_degree_one_values(graph: PropagationGraph) -> None:
    """Remove value nodes that occur in only one column.

    Such nodes cannot carry a label from one attribute to another, so they
    only slow propagation down (paper Section 5.2.1).  Attribute nodes are
    never pruned, even if isolated, so that every attribute still receives a
    label distribution.
    """
    to_remove = [
        node
        for node in graph.value_nodes
        if graph.degree(node) <= 1
    ]
    for node in to_remove:
        graph.remove_node(node)
