"""Metadata-based schema matcher (the COMA++ stand-in).

The paper plugs the COMA++ tool into Q as a black-box *metadata* matcher
("we used COMA++'s default structural relationship and substring matchers
over metadata", Section 3.2.1).  COMA++ is closed-source Java software, so
this module provides a matcher with the same interface and the same
qualitative behaviour:

* it looks only at schema-level evidence (attribute and relation names, and
  the names of sibling attributes for a structural signal), never at data
  values;
* it combines several name similarity measures (token overlap, Jaro–Winkler,
  character trigrams, substring containment) into a single confidence in
  ``[0, 1]``;
* it is good at detecting near-identical names (``entry_ac`` ↔ ``entry_ac``)
  and misses purely instance-level synonyms (``go_id`` ↔ ``acc``) — which is
  exactly the behaviour the paper's Table 1 and Figure 10 rely on when
  contrasting COMA++ with the MAD instance-based matcher.

See DESIGN.md, "Substitutions", for the justification of this replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..datastore.table import Table
from ..profiling.index import CatalogProfileIndex
from ..profiling.profiles import schema_fingerprint
from ..similarity.edit_distance import jaro_winkler_similarity
from ..similarity.jaccard import token_jaccard
from ..similarity.ngram import ngram_similarity
from ..similarity.tokenize import normalize_label, token_set
from .base import AttributeRef, BaseMatcher, Correspondence


@dataclass
class MetadataMatcherConfig:
    """Weights and thresholds for the metadata matcher.

    The component weights must sum to 1; the defaults follow the common
    "hybrid name matcher" recipe (token evidence weighted highest, then
    string-level evidence, then the structural bonus).
    """

    token_weight: float = 0.40
    jaro_winkler_weight: float = 0.25
    trigram_weight: float = 0.20
    substring_weight: float = 0.15
    structural_bonus: float = 0.05
    min_confidence: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ValueError` if the component weights do not sum to 1."""
        total = (
            self.token_weight
            + self.jaro_winkler_weight
            + self.trigram_weight
            + self.substring_weight
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"component weights must sum to 1.0, got {total}")

    def key(self) -> Tuple[float, ...]:
        """Hashable identity of the configuration (for shared pair memos)."""
        return (
            self.token_weight,
            self.jaro_winkler_weight,
            self.trigram_weight,
            self.substring_weight,
            self.structural_bonus,
            self.min_confidence,
        )


class MetadataMatcher(BaseMatcher):
    """Pairwise schema matcher over attribute names and light structure.

    Parameters
    ----------
    config:
        Component weights and thresholds.
    profile_index:
        Optional shared :class:`CatalogProfileIndex`.  Metadata evidence is
        schema-only, so the matcher's output for a relation pair depends
        solely on the two schemas (and the config): with an index attached,
        each pair's correspondences are memoized under the schema
        fingerprints and replayed — across aligner strategies, registration
        replays and catalog clones — instead of being re-scored.  The
        precomputed sibling-name token unions also replace the per-call
        structural-similarity scan.
    """

    name = "metadata"

    def __init__(
        self,
        config: Optional[MetadataMatcherConfig] = None,
        profile_index: Optional[CatalogProfileIndex] = None,
    ) -> None:
        super().__init__()
        self.config = config or MetadataMatcherConfig()
        self.config.validate()
        self.profile_index = profile_index

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def name_similarity(self, label_a: str, label_b: str) -> float:
        """Combined name similarity of two attribute labels, in ``[0, 1]``.

        Memoized per (weights, label pair): schema matching compares the
        same label pairs across every strategy, trial and registration.
        Every component measure is symmetric (Jaccard, Jaro–Winkler, Dice,
        substring containment — covered by the property tests), so the pair
        is canonicalized before the cache and each unordered pair is scored
        exactly once.
        """
        if label_b < label_a:
            label_a, label_b = label_b, label_a
        config = self.config
        return _name_similarity_cached(
            label_a,
            label_b,
            config.token_weight,
            config.jaro_winkler_weight,
            config.trigram_weight,
            config.substring_weight,
        )

    def _structural_similarity(self, table_a: Table, table_b: Table) -> float:
        """Fraction of sibling-attribute tokens the two relations share.

        A weak structural signal in the spirit of COMA++'s structural
        matcher: two attributes embedded in relations whose remaining
        attributes look alike are slightly more likely to correspond.
        Reads the precomputed sibling-name token unions off the shared
        profile index when available (identical value — same unions).
        """
        tokens_a = self._sibling_tokens(table_a)
        tokens_b = self._sibling_tokens(table_b)
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)

    def _sibling_tokens(self, table: Table) -> frozenset:
        index = self.profile_index
        if index is not None:
            profile = index.relation_profile(table.schema.qualified_name)
            if profile is not None and profile.attribute_names == tuple(
                table.schema.attribute_names
            ):
                return profile.name_token_union
        tokens = set()
        for attr in table.schema.attribute_names:
            tokens |= token_set(attr)
        return frozenset(tokens)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_relations(self, table_a: Table, table_b: Table) -> List[Correspondence]:
        """Align all attribute pairs of two relations.

        Every attribute pair is compared (and counted); pairs whose combined
        confidence clears ``min_confidence`` are returned.  Metadata
        evidence is a pure function of the two schemas, so with a profile
        index attached the pair's output is memoized under the schema
        fingerprints; the comparison counter still records the full arity
        product either way (the Figure 7/8 instrumentation measures the
        *logical* comparisons a strategy requests).
        """
        relation_a = table_a.schema.qualified_name
        relation_b = table_b.schema.qualified_name
        if relation_a == relation_b:
            return []
        self.counter.record_relation_pair(
            len(table_a.schema.attribute_names), len(table_b.schema.attribute_names)
        )
        index = self.profile_index
        memo_key = None
        if index is not None:
            memo_key = (
                self.name,
                self.config.key(),
                schema_fingerprint(table_a),
                schema_fingerprint(table_b),
            )
            cached = index.pair_memo_get(memo_key)
            if cached is not None:
                return list(cached)
        structural = self._structural_similarity(table_a, table_b)
        correspondences: List[Correspondence] = []
        for attr_a in table_a.schema.attribute_names:
            for attr_b in table_b.schema.attribute_names:
                score = self.name_similarity(attr_a, attr_b)
                score = min(1.0, score + self.config.structural_bonus * structural)
                if score < self.config.min_confidence:
                    continue
                correspondences.append(
                    Correspondence(
                        source=AttributeRef(relation_a, attr_a),
                        target=AttributeRef(relation_b, attr_b),
                        confidence=round(score, 6),
                        matcher=self.name,
                    )
                )
        if index is not None and memo_key is not None:
            index.pair_memo_put(memo_key, tuple(correspondences))
        return correspondences


def _substring_score(a: str, b: str) -> float:
    stripped_a = a.replace("_", "")
    stripped_b = b.replace("_", "")
    if not stripped_a or not stripped_b:
        return 0.0
    if stripped_a in stripped_b or stripped_b in stripped_a:
        shorter = min(len(stripped_a), len(stripped_b))
        longer = max(len(stripped_a), len(stripped_b))
        return shorter / longer
    return 0.0


@lru_cache(maxsize=65536)
def _name_similarity_cached(
    label_a: str,
    label_b: str,
    token_weight: float,
    jaro_winkler_weight: float,
    trigram_weight: float,
    substring_weight: float,
) -> float:
    """Pure combined-similarity computation, shared across matcher instances."""
    normalized_a = normalize_label(label_a)
    normalized_b = normalize_label(label_b)
    if not normalized_a or not normalized_b:
        return 0.0
    if normalized_a == normalized_b:
        return 1.0
    token_score = token_jaccard(label_a, label_b)
    jaro_score = jaro_winkler_similarity(normalized_a, normalized_b)
    trigram_score = ngram_similarity(normalized_a, normalized_b)
    substring_score = _substring_score(normalized_a, normalized_b)
    return (
        token_weight * token_score
        + jaro_winkler_weight * jaro_score
        + trigram_weight * trigram_score
        + substring_weight * substring_score
    )
