"""Combining multiple matchers (paper Section 3.2.3).

The ensemble runs every configured matcher over a relation pair (or a whole
set of tables), merges the per-matcher confidences for each attribute pair,
and exposes:

* the merged per-matcher confidence map — what
  :meth:`repro.graph.search_graph.SearchGraph.add_association` consumes so
  that each matcher's confidence becomes its own weighted feature;
* a simple *averaged* score — the no-feedback baseline of Figure 11
  ("the matchers' scores are simply averaged for every edge").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..datastore.table import Table
from .base import (
    AttributeRef,
    BaseMatcher,
    Correspondence,
    merge_correspondences,
    top_y_per_attribute,
)
from .mad import MadMatcher


@dataclass
class EnsembleAlignment:
    """One attribute pair with the confidences assigned by each matcher."""

    source: AttributeRef
    target: AttributeRef
    confidences: Dict[str, float] = field(default_factory=dict)

    @property
    def average_confidence(self) -> float:
        """Unweighted mean of the per-matcher confidences (Figure 11 baseline)."""
        if not self.confidences:
            return 0.0
        return sum(self.confidences.values()) / len(self.confidences)

    @property
    def max_confidence(self) -> float:
        """Highest confidence any matcher assigned."""
        return max(self.confidences.values()) if self.confidences else 0.0

    def key(self) -> Tuple[str, str]:
        """Order-independent identity of the attribute pair."""
        a, b = self.source.qualified, self.target.qualified
        return (a, b) if a <= b else (b, a)


class MatcherEnsemble:
    """Runs several matchers and merges their outputs per attribute pair.

    Parameters
    ----------
    matchers:
        Member matchers.
    top_y:
        How many candidate pairs to keep per attribute after merging.
    profile_index:
        Optional shared :class:`~repro.profiling.index.CatalogProfileIndex`.
        It is injected into every member matcher that supports one (and has
        none attached yet), so the whole ensemble reads one set of table
        profiles and posting lists instead of re-deriving per-matcher state.
    """

    def __init__(
        self,
        matchers: Sequence[BaseMatcher],
        top_y: int = 2,
        profile_index=None,
    ) -> None:
        if not matchers:
            raise ValueError("the ensemble needs at least one matcher")
        self.matchers = list(matchers)
        self.top_y = top_y
        self.profile_index = profile_index
        if profile_index is not None:
            for matcher in self.matchers:
                if getattr(matcher, "profile_index", "unsupported") is None:
                    matcher.profile_index = profile_index

    # ------------------------------------------------------------------
    # Pairwise interface
    # ------------------------------------------------------------------
    def match_relations(self, table_a: Table, table_b: Table) -> List[EnsembleAlignment]:
        """Run every matcher on one relation pair and merge the results."""
        correspondences: List[Correspondence] = []
        for matcher in self.matchers:
            correspondences.extend(matcher.match_relations(table_a, table_b))
        return self._merge(correspondences)

    # ------------------------------------------------------------------
    # Whole-catalog interface
    # ------------------------------------------------------------------
    def match_tables(self, tables: Sequence[Table]) -> List[EnsembleAlignment]:
        """Run every matcher across all ``tables``.

        Pairwise matchers are applied to every relation pair; the MAD
        matcher (and any other matcher exposing ``match_tables``) is run
        once globally, which is cheaper and is how the paper uses it.
        """
        correspondences: List[Correspondence] = []
        for matcher in self.matchers:
            if hasattr(matcher, "match_tables"):
                correspondences.extend(matcher.match_tables(tables))  # type: ignore[attr-defined]
                continue
            for i, table_a in enumerate(tables):
                for table_b in tables[i + 1 :]:
                    correspondences.extend(matcher.match_relations(table_a, table_b))
        return self._merge(correspondences)

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def _merge(self, correspondences: Iterable[Correspondence]) -> List[EnsembleAlignment]:
        correspondences = list(correspondences)
        # Merge per attribute pair first so that top-Y selection is over
        # *pairs* (ranked by their best confidence across matchers), not
        # over individual matcher outputs — otherwise a strong matcher's
        # proposals could crowd a weaker matcher's evidence for the same
        # pair out of the selection.
        merged = merge_correspondences(correspondences)
        refs: Dict[Tuple[str, str], Tuple[AttributeRef, AttributeRef]] = {}
        for correspondence in correspondences:
            refs.setdefault(correspondence.key(), (correspondence.source, correspondence.target))
        best_per_pair = [
            Correspondence(
                source=refs[key][0],
                target=refs[key][1],
                confidence=max(confidences.values()),
                matcher="ensemble",
            )
            for key, confidences in merged.items()
        ]
        selected_keys = {c.key() for c in top_y_per_attribute(best_per_pair, self.top_y)}
        alignments: List[EnsembleAlignment] = []
        for key in selected_keys:
            source, target = refs[key]
            alignments.append(
                EnsembleAlignment(source=source, target=target, confidences=dict(merged[key]))
            )
        alignments.sort(key=lambda a: (-a.max_confidence, a.key()))
        return alignments

    def reset_counters(self) -> None:
        """Reset the comparison instrumentation of every member matcher."""
        for matcher in self.matchers:
            matcher.reset_counters()

    @property
    def total_attribute_comparisons(self) -> int:
        """Sum of attribute comparisons across member matchers."""
        return sum(m.counter.attribute_comparisons for m in self.matchers)
