"""Schema matchers: metadata (COMA++ stand-in), MAD label propagation, value overlap.

Public API
----------
* :class:`BaseMatcher`, :class:`Correspondence`, :class:`AttributeRef`,
  :func:`top_y_per_attribute`, :func:`merge_correspondences` — the black-box
  matcher interface (paper Section 3.2).
* :class:`MetadataMatcher` — metadata-only matcher standing in for COMA++.
* :class:`MadMatcher`, :func:`run_mad`, :func:`build_column_value_graph` —
  the Modified Adsorption instance-based matcher (Algorithm 1).
* :class:`ValueOverlapMatcher`, :class:`ValueOverlapFilter` — instance
  overlap scoring and the Figure 7 comparison filter.
* :class:`ContentTfIdfMatcher` — instance evidence from the profile index's
  precomputed content tf-idf vectors (token-posting-list blocking).
* :class:`MatcherEnsemble`, :class:`EnsembleAlignment` — combining matchers
  (Section 3.2.3).
"""

from .base import (
    AttributeRef,
    BaseMatcher,
    ComparisonCounter,
    Correspondence,
    available_matchers,
    merge_correspondences,
    register_matcher,
    resolve_matcher,
    top_y_per_attribute,
)
from .content_tfidf import ContentTfIdfMatcher
from .ensemble import EnsembleAlignment, MatcherEnsemble
from .mad import (
    DUMMY_LABEL,
    MadConfig,
    MadMatcher,
    compute_walk_probabilities,
    normalize_distribution,
    run_mad,
)
from .mad_graph import (
    MadGraphConfig,
    PropagationGraph,
    attribute_graph_node,
    build_column_value_graph,
    value_graph_node,
)
from .metadata_matcher import MetadataMatcher, MetadataMatcherConfig
from .value_overlap import ValueOverlapFilter, ValueOverlapMatcher

# The built-in matchers, dispatchable by their canonical names (the same
# names that appear in Correspondence.matcher / edge feature names).
register_matcher(MetadataMatcher.name, MetadataMatcher)
register_matcher(MadMatcher.name, MadMatcher)
register_matcher(ValueOverlapMatcher.name, ValueOverlapMatcher)
register_matcher(ContentTfIdfMatcher.name, ContentTfIdfMatcher)

__all__ = [
    "AttributeRef",
    "BaseMatcher",
    "ComparisonCounter",
    "ContentTfIdfMatcher",
    "Correspondence",
    "DUMMY_LABEL",
    "EnsembleAlignment",
    "MadConfig",
    "MadGraphConfig",
    "MadMatcher",
    "MatcherEnsemble",
    "MetadataMatcher",
    "MetadataMatcherConfig",
    "PropagationGraph",
    "ValueOverlapFilter",
    "ValueOverlapMatcher",
    "attribute_graph_node",
    "available_matchers",
    "register_matcher",
    "resolve_matcher",
    "build_column_value_graph",
    "compute_walk_probabilities",
    "merge_correspondences",
    "normalize_distribution",
    "run_mad",
    "top_y_per_attribute",
    "value_graph_node",
]
