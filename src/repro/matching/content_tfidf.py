"""Content tf-idf matcher: instance evidence from precomputed token vectors.

An extra ensemble component on top of the profiling layer: each attribute is
treated as a document of its distinct value *tokens*, and a pair's
confidence is the cosine of their L2-normalized tf-idf vectors — both
precomputed and cached by the shared
:class:`~repro.profiling.index.CatalogProfileIndex`.  Where the
value-overlap matcher needs exact shared values, tf-idf content similarity
also catches columns whose values merely share vocabulary (compound terms,
free-text descriptions), weighted against catalog-common tokens.

Blocking: two attributes with no shared value token have cosine exactly 0,
so the pair is skipped on a token-set disjointness test over the profiles'
precomputed ``value_tokens`` — lossless for any positive ``min_confidence``
and O(pair), independent of catalog size.
"""

from __future__ import annotations

from typing import List, Optional

from ..datastore.table import Table
from ..profiling.index import CatalogProfileIndex
from .base import AttributeRef, BaseMatcher, Correspondence


class ContentTfIdfMatcher(BaseMatcher):
    """Scores attribute pairs by cosine similarity of content tf-idf vectors.

    Parameters
    ----------
    min_confidence:
        Minimum cosine for a correspondence to be emitted; must be positive
        (token-disjoint pairs are pruned by blocking, which is only lossless
        because their cosine is exactly 0).
    profile_index:
        Optional shared :class:`CatalogProfileIndex`.  When absent (or when
        a table's profile is stale), the matcher profiles the two relations
        into a private index on the fly — correct but without the shared
        amortization.
    """

    name = "content_tfidf"

    #: Document frequencies come from the attached index's whole corpus; a
    #: two-table fallback index yields different (still valid) scores, so
    #: parallel process workers must not silently drop the index.
    index_result_dependent = True

    def __init__(
        self,
        min_confidence: float = 0.25,
        profile_index: Optional[CatalogProfileIndex] = None,
    ) -> None:
        super().__init__()
        if min_confidence <= 0.0:
            raise ValueError("min_confidence must be positive (blocking relies on it)")
        self.min_confidence = min_confidence
        self.profile_index = profile_index

    def _index_for(self, table_a: Table, table_b: Table) -> CatalogProfileIndex:
        index = self.profile_index
        if index is not None and index.is_current(table_a) and index.is_current(table_b):
            return index
        return CatalogProfileIndex.from_tables((table_a, table_b))

    def match_relations(self, table_a: Table, table_b: Table) -> List[Correspondence]:
        """Align the attributes of two relations by content tf-idf cosine."""
        relation_a = table_a.schema.qualified_name
        relation_b = table_b.schema.qualified_name
        if relation_a == relation_b:
            return []
        self.counter.record_relation_pair(
            len(table_a.schema.attribute_names), len(table_b.schema.attribute_names)
        )
        index = self._index_for(table_a, table_b)
        correspondences: List[Correspondence] = []
        for attr_a in table_a.schema.attribute_names:
            profile_a = index.profile(relation_a, attr_a)
            if profile_a is None or not profile_a.value_tokens:
                continue
            for attr_b in table_b.schema.attribute_names:
                profile_b = index.profile(relation_b, attr_b)
                if profile_b is None or profile_a.value_tokens.isdisjoint(
                    profile_b.value_tokens
                ):
                    # Token-disjoint vectors have cosine 0: skip losslessly.
                    continue
                confidence = index.content_similarity(
                    relation_a, attr_a, relation_b, attr_b
                )
                if confidence < self.min_confidence:
                    continue
                correspondences.append(
                    Correspondence(
                        source=AttributeRef(relation_a, attr_a),
                        target=AttributeRef(relation_b, attr_b),
                        confidence=round(min(confidence, 1.0), 6),
                        matcher=self.name,
                    )
                )
        return correspondences
