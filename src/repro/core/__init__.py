"""The Q system core: views, query generation, evaluation and the system facade.

Public API
----------
* :class:`QSystem`, :class:`QSystemConfig` — the end-to-end system (Figure 1).
* :class:`RankedView`, :class:`ViewState` — persistent keyword views.
* :class:`QueryGenerator`, :class:`GeneratedQuery`, :func:`tree_signature` —
  Steiner tree → conjunctive query translation.
* :class:`GoldStandard`, :class:`PrecisionRecall`, evaluation helpers — the
  Section 5.2 metrics.
"""

from .evaluation import (
    EdgeCostGap,
    GoldStandard,
    PrCurvePoint,
    PrecisionRecall,
    confidence_precision_recall_curve,
    correspondence_pairs,
    edge_attribute_pair,
    evaluate_top_y,
    gold_vs_nongold_costs,
    make_pair,
    max_precision_at_recall,
    precision_recall_curve,
)
from .qsystem import QSystem, QSystemConfig
from .query_generation import GeneratedQuery, QueryGenerator, tree_signature
from .simulated_feedback import (
    gold_restricted_graph,
    gold_target_tree,
    simulated_feedback_for_queries,
    simulated_feedback_for_view,
)
from .view import RankedView, ViewState

__all__ = [
    "EdgeCostGap",
    "GeneratedQuery",
    "GoldStandard",
    "PrCurvePoint",
    "PrecisionRecall",
    "QSystem",
    "QSystemConfig",
    "QueryGenerator",
    "RankedView",
    "ViewState",
    "confidence_precision_recall_curve",
    "correspondence_pairs",
    "edge_attribute_pair",
    "evaluate_top_y",
    "gold_restricted_graph",
    "gold_target_tree",
    "gold_vs_nongold_costs",
    "make_pair",
    "max_precision_at_recall",
    "precision_recall_curve",
    "simulated_feedback_for_queries",
    "simulated_feedback_for_view",
    "tree_signature",
]
