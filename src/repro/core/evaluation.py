"""Evaluation metrics for schema alignments (paper Section 5.2).

Alignment quality is measured against a *gold standard* set of attribute
pairs (the 8 semantically meaningful join/alignment edges of Figure 9):

* precision / recall / F-measure of the top-Y alignment edges per attribute
  (Table 1);
* precision–recall curves obtained by sweeping a cost threshold over the
  search graph's association edges (Figures 10 and 11);
* average gold vs non-gold edge cost (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.edges import Edge, EdgeKind
from ..graph.nodes import NodeKind
from ..graph.search_graph import SearchGraph
from ..matching.base import Correspondence

#: An undirected attribute pair: both members are "<relation>.<attribute>".
AttributePair = Tuple[str, str]


def make_pair(attribute_a: str, attribute_b: str) -> AttributePair:
    """Canonical (sorted) form of an undirected attribute pair."""
    return (attribute_a, attribute_b) if attribute_a <= attribute_b else (attribute_b, attribute_a)


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision, recall and F-measure of a predicted pair set."""

    precision: float
    recall: float

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def as_percentages(self) -> Tuple[float, float, float]:
        """(precision, recall, F) as percentages rounded to 2 decimals."""
        return (
            round(self.precision * 100, 2),
            round(self.recall * 100, 2),
            round(self.f_measure * 100, 2),
        )


@dataclass
class GoldStandard:
    """The reference alignment edges."""

    pairs: Set[AttributePair] = field(default_factory=set)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "GoldStandard":
        """Build a gold standard from (attribute, attribute) string pairs."""
        return cls(pairs={make_pair(a, b) for a, b in pairs})

    def __contains__(self, pair: object) -> bool:
        return pair in self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, predicted: Iterable[AttributePair]) -> PrecisionRecall:
        """Precision/recall of a predicted set of attribute pairs."""
        predicted_set = {make_pair(a, b) for a, b in predicted}
        if not predicted_set:
            return PrecisionRecall(precision=0.0 if self.pairs else 1.0, recall=0.0 if self.pairs else 1.0)
        true_positives = len(predicted_set & self.pairs)
        precision = true_positives / len(predicted_set)
        recall = true_positives / len(self.pairs) if self.pairs else 1.0
        return PrecisionRecall(precision=precision, recall=recall)

    def is_gold_edge(self, graph: SearchGraph, edge: Edge) -> bool:
        """Whether an association edge corresponds to a gold attribute pair."""
        pair = edge_attribute_pair(graph, edge)
        return pair is not None and pair in self.pairs


def edge_attribute_pair(graph: SearchGraph, edge: Edge) -> Optional[AttributePair]:
    """The attribute pair an association edge connects, if both ends are attributes."""
    node_u = graph.node(edge.u)
    node_v = graph.node(edge.v)
    if node_u.kind is not NodeKind.ATTRIBUTE or node_v.kind is not NodeKind.ATTRIBUTE:
        return None
    qualified_u = f"{node_u.relation}.{node_u.attribute}"
    qualified_v = f"{node_v.relation}.{node_v.attribute}"
    return make_pair(qualified_u, qualified_v)


def correspondence_pairs(correspondences: Iterable[Correspondence]) -> Set[AttributePair]:
    """The set of attribute pairs proposed by a list of correspondences."""
    return {c.key() for c in correspondences}


# ----------------------------------------------------------------------
# Table 1: top-Y evaluation of a single matcher's output
# ----------------------------------------------------------------------
def evaluate_top_y(
    correspondences: Sequence[Correspondence],
    gold: GoldStandard,
    y: int,
) -> PrecisionRecall:
    """Evaluate the top-Y correspondences per attribute against the gold standard."""
    from ..matching.base import top_y_per_attribute

    retained = top_y_per_attribute(correspondences, y)
    return gold.score(correspondence_pairs(retained))


# ----------------------------------------------------------------------
# Figures 10/11: precision-recall curves by cost-threshold sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrCurvePoint:
    """One point of a precision-recall curve."""

    threshold: float
    precision: float
    recall: float


def association_edge_costs(graph: SearchGraph) -> List[Tuple[Edge, float, Optional[AttributePair]]]:
    """All association edges with their current cost and attribute pair."""
    result = []
    for edge in graph.association_edges():
        result.append((edge, graph.edge_cost(edge), edge_attribute_pair(graph, edge)))
    return result


def precision_recall_curve(
    graph: SearchGraph,
    gold: GoldStandard,
    thresholds: Optional[Sequence[float]] = None,
) -> List[PrCurvePoint]:
    """Sweep a cost threshold over the association edges (lower cost = better).

    For each threshold, the predicted alignment set is every association
    edge with cost ≤ threshold; precision and recall are computed against
    the gold standard.  When ``thresholds`` is omitted, every distinct edge
    cost is used as a threshold, yielding the full curve.
    """
    scored = association_edge_costs(graph)
    if thresholds is None:
        thresholds = sorted({round(cost, 9) for _, cost, _ in scored})
    points: List[PrCurvePoint] = []
    for threshold in thresholds:
        predicted = {
            pair
            for _, cost, pair in scored
            if pair is not None and cost <= threshold
        }
        pr = gold.score(predicted)
        points.append(
            PrCurvePoint(threshold=threshold, precision=pr.precision, recall=pr.recall)
        )
    return points


def confidence_precision_recall_curve(
    correspondences: Sequence[Correspondence],
    gold: GoldStandard,
    thresholds: Optional[Sequence[float]] = None,
) -> List[PrCurvePoint]:
    """PR curve for raw matcher output, sweeping a *confidence* threshold.

    Higher confidence = better, so the predicted set at each threshold is
    every correspondence with confidence ≥ threshold.
    """
    if thresholds is None:
        thresholds = sorted({round(c.confidence, 9) for c in correspondences}, reverse=True)
    points: List[PrCurvePoint] = []
    for threshold in thresholds:
        predicted = {c.key() for c in correspondences if c.confidence >= threshold}
        pr = gold.score(predicted)
        points.append(
            PrCurvePoint(threshold=threshold, precision=pr.precision, recall=pr.recall)
        )
    return points


def max_precision_at_recall(
    points: Sequence[PrCurvePoint], recall_level: float
) -> float:
    """Best precision achieved at recall ≥ ``recall_level`` (0 if unreachable)."""
    eligible = [p.precision for p in points if p.recall >= recall_level - 1e-9]
    return max(eligible) if eligible else 0.0


# ----------------------------------------------------------------------
# Figure 12: average gold vs non-gold edge cost
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeCostGap:
    """Average association edge cost, split by gold membership."""

    gold_average: float
    non_gold_average: float

    @property
    def gap(self) -> float:
        """``non_gold_average - gold_average`` (positive means gold edges are cheaper)."""
        return self.non_gold_average - self.gold_average


def gold_vs_nongold_costs(graph: SearchGraph, gold: GoldStandard) -> EdgeCostGap:
    """Average cost of gold vs non-gold association edges in the graph."""
    gold_costs: List[float] = []
    non_gold_costs: List[float] = []
    for edge, cost, pair in association_edge_costs(graph):
        if pair is None:
            continue
        if pair in gold.pairs:
            gold_costs.append(cost)
        else:
            non_gold_costs.append(cost)
    gold_avg = sum(gold_costs) / len(gold_costs) if gold_costs else 0.0
    non_gold_avg = sum(non_gold_costs) / len(non_gold_costs) if non_gold_costs else 0.0
    return EdgeCostGap(gold_average=gold_avg, non_gold_average=non_gold_avg)
