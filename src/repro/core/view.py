"""Persistent ranked views over keyword queries (paper Section 2.3).

A :class:`RankedView` materializes the top-k interpretation of a keyword
query: the expanded query graph, the k lowest-cost Steiner trees, the
conjunctive queries generated from them, and the ranked union of their
answers.  The view is kept up to date as the underlying search graph changes
— new association edges from source registration, or new edge costs from
feedback — by calling :meth:`RankedView.refresh`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datastore.database import Catalog
from ..datastore.executor import QueryExecutor
from ..datastore.provenance import AnswerTuple
from ..exceptions import QueryError
from ..graph.query_graph import QueryGraph, QueryGraphBuilder
from ..graph.search_graph import SearchGraph
from ..learning.feedback import (
    AnnotationKind,
    AnswerAnnotation,
    FeedbackEvent,
    FeedbackGeneralizer,
)
from ..steiner.topk import KBestSteiner
from ..steiner.tree import SteinerTree
from .query_generation import GeneratedQuery, QueryGenerator


@dataclass
class ViewState:
    """A snapshot of the view's contents after one refresh."""

    trees: List[SteinerTree] = field(default_factory=list)
    queries: List[GeneratedQuery] = field(default_factory=list)
    answers: List[AnswerTuple] = field(default_factory=list)

    @property
    def alpha(self) -> Optional[float]:
        """Cost of the k-th (worst) retained tree — the pruning radius α."""
        if not self.trees:
            return None
        return max(tree.cost for tree in self.trees)


class RankedView:
    """A keyword query saved as a continuously maintained top-k view.

    Parameters
    ----------
    keywords:
        The keyword query terms.
    catalog:
        The system catalog (used for query execution and value matching).
    graph:
        The current search graph.  The view keeps its own expanded *query
        graph* which shares the search graph's weight vector, so feedback
        learning updates both.
    k:
        Number of query trees retained.
    builder:
        Optional query-graph builder (shared across views to reuse indexes).
    """

    def __init__(
        self,
        keywords: Sequence[str],
        catalog: Catalog,
        graph: SearchGraph,
        k: int = 5,
        builder: Optional[QueryGraphBuilder] = None,
        answer_limit: Optional[int] = 200,
    ) -> None:
        self.keywords = list(keywords)
        self.catalog = catalog
        self.base_graph = graph
        self.k = k
        self.answer_limit = answer_limit
        self.builder = builder or QueryGraphBuilder(catalog)
        self.solver = KBestSteiner()
        self.query_graph: QueryGraph = self.builder.expand(graph, self.keywords)
        self.state = ViewState()
        self._trees_by_signature: Dict[str, SteinerTree] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild_query_graph(self) -> None:
        """Re-expand the query graph from the current base search graph.

        Needed after structural changes to the search graph (new sources or
        new association edges); plain weight changes only require
        :meth:`refresh`.
        """
        self.query_graph = self.builder.expand(self.base_graph, self.keywords)

    def refresh(self, rebuild_graph: bool = False) -> ViewState:
        """Recompute trees, queries and answers under the current costs."""
        if rebuild_graph:
            self.rebuild_query_graph()
        graph = self.query_graph.graph
        terminals = list(self.query_graph.terminals)
        trees = self.solver.solve(graph, terminals, self.k) if terminals else []
        generator = QueryGenerator(graph)
        queries = generator.generate_all(trees)
        executor = QueryExecutor(self.catalog)
        answers = executor.execute_union(
            [generated.query for generated in queries], limit=self.answer_limit
        )
        self.state = ViewState(trees=trees, queries=queries, answers=answers)
        self._trees_by_signature = {g.signature: g.tree for g in queries}
        return self.state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def terminals(self) -> Tuple[str, ...]:
        """Keyword node ids of the view's query graph."""
        return self.query_graph.terminals

    @property
    def alpha(self) -> Optional[float]:
        """Cost of the k-th best tree (the VIEWBASEDALIGNER pruning radius)."""
        return self.state.alpha

    def answers(self) -> List[AnswerTuple]:
        """The ranked answers of the last refresh."""
        return list(self.state.answers)

    def trees(self) -> List[SteinerTree]:
        """The retained Steiner trees of the last refresh."""
        return list(self.state.trees)

    def uses_relation(self, qualified_relation: str) -> bool:
        """Whether any retained tree touches ``qualified_relation``."""
        return any(
            tree.contains_relation(self.query_graph.graph, qualified_relation)
            for tree in self.state.trees
        )

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def feedback_generalizer(self) -> FeedbackGeneralizer:
        """A generalizer mapping this view's answer annotations to tree feedback."""
        return FeedbackGeneralizer(self.terminals, dict(self._trees_by_signature))

    def annotate(
        self,
        answer: AnswerTuple,
        kind: AnnotationKind,
        other: Optional[AnswerTuple] = None,
    ) -> FeedbackEvent:
        """Convert one answer annotation into a tree-level feedback event."""
        annotation = AnswerAnnotation(answer=answer, kind=kind, other=other)
        return self.feedback_generalizer().generalize(annotation)
