"""Persistent ranked views over keyword queries (paper Section 2.3).

A :class:`RankedView` materializes the top-k interpretation of a keyword
query: the expanded query graph, the k lowest-cost Steiner trees, the
conjunctive queries generated from them, and the ranked union of their
answers.  The view is kept up to date as the underlying search graph changes
— new association edges from source registration, or new edge costs from
feedback — by calling :meth:`RankedView.refresh`.

Refreshes are *incremental*: the view diffs the newly solved trees against
the previous generation by tree signature and only re-executes the
conjunctive queries whose trees actually changed.  Unchanged trees reuse
their cached answers (re-priced to the current tree cost — feedback moves
costs without touching the joined tuples), and when neither the edge weights
nor the query-graph structure changed since the last refresh, the Steiner
solve itself is skipped.  Execution goes through the planned engine
(:mod:`repro.engine`) whose :class:`~repro.engine.context.ExecutionContext`
shares scan and join-index caches across the view's k queries (and across
views, when the Q system supplies a shared context).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..datastore.database import Catalog
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..engine.executor import PlanExecutor, project_answer, ranked_union, union_column_plan
from ..exceptions import DeadlineExceededError, QueryError
from ..faults.budget import Budget
from ..graph.query_graph import QueryGraph, QueryGraphBuilder
from ..graph.search_graph import SearchGraph
from ..obs.tracing import active_trace
from ..learning.feedback import (
    AnnotationKind,
    AnswerAnnotation,
    FeedbackEvent,
    FeedbackGeneralizer,
)
from ..steiner.topk import KBestSteiner
from ..steiner.tree import SteinerTree
from .query_generation import GeneratedQuery, QueryGenerator


@dataclass
class ViewState:
    """A snapshot of the view's contents after one refresh."""

    trees: List[SteinerTree] = field(default_factory=list)
    queries: List[GeneratedQuery] = field(default_factory=list)
    answers: List[AnswerTuple] = field(default_factory=list)

    @property
    def alpha(self) -> Optional[float]:
        """Cost of the k-th (worst) retained tree — the pruning radius α."""
        if not self.trees:
            return None
        return max(tree.cost for tree in self.trees)


@dataclass
class RefreshStats:
    """Bookkeeping of the last refresh (what was reused vs recomputed)."""

    solver_runs: int = 0
    queries_executed: int = 0
    queries_reused: int = 0


@dataclass
class _CachedAnswers:
    """Raw (un-unioned) answers of one query, tagged with data versions.

    ``table_versions`` entries carry the :class:`Table` *object* alongside
    its version counter: a source re-registered under the same name yields
    a different table whose version may coincide with the old one's, and
    identity is what distinguishes them.
    """

    table_versions: Tuple[Tuple[str, object, int], ...]
    answers: List[AnswerTuple]


class RankedView:
    """A keyword query saved as a continuously maintained top-k view.

    Parameters
    ----------
    keywords:
        The keyword query terms.
    catalog:
        The system catalog (used for query execution and value matching).
    graph:
        The current search graph.  The view keeps its own expanded *query
        graph* which shares the search graph's weight vector, so feedback
        learning updates both.
    k:
        Number of query trees retained.
    builder:
        Optional query-graph builder (shared across views to reuse indexes).
    engine_context:
        Optional shared :class:`~repro.engine.context.ExecutionContext`; the
        Q system passes one so all views share scan/join-index caches.
    max_cached_queries:
        Bound on the per-signature answer cache (LRU eviction).
    allow_window_pushdown:
        Whether reads may use the backend's windowed ranked-union pushdown
        (one SELECT per cold union read).  The service layer disables it for
        tenant-overlay views: their repricing runs on the Python engine by
        construction.
    """

    def __init__(
        self,
        keywords: Sequence[str],
        catalog: Catalog,
        graph: SearchGraph,
        k: int = 5,
        builder: Optional[QueryGraphBuilder] = None,
        answer_limit: Optional[int] = 200,
        engine_context: Optional[ExecutionContext] = None,
        max_cached_queries: int = 64,
        query_graph: Optional[QueryGraph] = None,
        allow_window_pushdown: bool = True,
    ) -> None:
        self.keywords = list(keywords)
        self.catalog = catalog
        self.base_graph = graph
        self.k = k
        self.answer_limit = answer_limit
        self.allow_window_pushdown = allow_window_pushdown
        self.builder = builder or QueryGraphBuilder(catalog)
        # A restored session injects the view's previously expanded query
        # graph (same keyword/value nodes, same edge ids) instead of
        # re-expanding — re-expansion would consume fresh edge ids and drop
        # any per-edge weight corrections feedback learned for this view.
        self.query_graph: QueryGraph = (
            query_graph if query_graph is not None else self.builder.expand(graph, self.keywords)
        )
        self.state = ViewState()
        self.engine_context = engine_context if engine_context is not None else ExecutionContext(catalog)
        # The solver shares the context's Steiner snapshot cache so repeated
        # solves over an unchanged query graph reuse one network.
        self.solver = KBestSteiner(network_cache=self.engine_context.steiner_cache)
        self.executor = PlanExecutor(catalog, self.engine_context)
        self.max_cached_queries = max_cached_queries
        self.last_refresh = RefreshStats()
        #: How many times this view synchronized with the graph (full
        #: refreshes plus streaming solves).  The lazy service layer uses
        #: this to demonstrate that pull-based consistency performs strictly
        #: fewer refreshes than the eager push model.
        self.refresh_count = 0
        #: How many times :meth:`invalidate_cache` ran (structural events).
        self.cache_invalidations = 0
        self._trees_by_signature: Dict[str, SteinerTree] = {}
        # Whether state.answers reflects the current solve.  A streaming
        # read that re-solved leaves answers unmaterialized; the answers()
        # accessor re-materializes on demand.
        self._answers_materialized = False
        self._answer_cache: "OrderedDict[str, _CachedAnswers]" = OrderedDict()
        self._cache_generation = self.engine_context.generation
        # (weights version, structure version, terminals, k) of the last
        # solve; refresh skips the solver when nothing it depends on moved.
        self._solve_state: Optional[Tuple[int, int, Tuple[str, ...], int]] = None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild_query_graph(self) -> None:
        """Re-expand the query graph from the current base search graph.

        Needed after structural changes to the search graph (new sources or
        new association edges); plain weight changes only require
        :meth:`refresh`.
        """
        self.query_graph = self.builder.expand(self.base_graph, self.keywords)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop all cached per-query answers and force the next solve.

        Called on structural events: query-graph rebuilds and new-source
        registrations (the Q system wires the registrar's listener here).
        """
        self._answer_cache.clear()
        self._solve_state = None
        self.cache_invalidations += 1

    def on_weights_updated(self) -> None:
        """Learning hook: edge costs changed, so the next refresh must re-solve.

        Cached query answers stay valid — join results do not depend on edge
        weights; they are merely re-priced on reuse.  (The weight-version
        fast path would catch this anyway; the explicit hook keeps the
        learner → view dependency visible and guards against weight vectors
        swapped wholesale.)
        """
        self._solve_state = None

    def _ensure_solved(
        self, rebuild_graph: bool = False, budget: Optional[Budget] = None
    ) -> Tuple[List[SteinerTree], List[GeneratedQuery], RefreshStats]:
        """Bring trees and generated queries up to date without executing them.

        The Steiner solve is skipped when edge weights, graph structure,
        terminals and ``k`` are all unchanged since the last solve.  Also
        drops the per-signature answer cache when the shared engine context
        was structurally invalidated (e.g. source registration).

        A ``budget`` makes the solve deadline-aware.  If it expires
        mid-enumeration the partial tree list is *used* for this read but
        never *recorded* as the view's authoritative solve state — the next
        unbudgeted read re-solves in full, so a deadline can never poison
        the ranking other readers (or the feedback generalizer) see.
        """
        if rebuild_graph:
            self.rebuild_query_graph()
        stats = RefreshStats()
        graph = self.query_graph.graph
        terminals = list(self.query_graph.terminals)
        solve_state = (
            graph.weights.version,
            graph.structure_version,
            tuple(terminals),
            self.k,
        )
        if self._solve_state == solve_state:
            trees = self.state.trees
            queries = self.state.queries
        else:
            with active_trace().span("solve"):
                trees = (
                    self.solver.solve(graph, terminals, self.k, budget=budget)
                    if terminals
                    else []
                )
                generator = QueryGenerator(graph)
                queries = generator.generate_all(trees)
            if budget is not None and budget.truncated:
                self._solve_state = None
            else:
                self._solve_state = solve_state
            stats.solver_runs = 1

        if self.engine_context.generation != self._cache_generation:
            # The shared context was structurally invalidated (e.g. source
            # registration); our cached answers may reference stale tables.
            self._answer_cache.clear()
            self._cache_generation = self.engine_context.generation

        self._trees_by_signature = {g.signature: g.tree for g in queries}
        return trees, queries, stats

    def refresh(self, rebuild_graph: bool = False) -> ViewState:
        """Recompute trees, queries and answers under the current costs.

        Incrementality: the Steiner solve is skipped when edge weights and
        graph structure are unchanged; per-query answers are reused whenever
        a tree with the same signature was already executed against the same
        table versions.  On a window-capable backend, every cache-missing
        query is executed by **one** windowed backend round trip
        (:meth:`_prime_answer_cache`) instead of per-query SELECTs.
        """
        trees, queries, stats = self._ensure_solved(rebuild_graph)
        primed = self._prime_answer_cache(queries, stats)
        pairs = []
        for generated in queries:
            answers_for = primed.get(generated.signature) if primed else None
            if answers_for is None:
                answers_for = self._answers_for(generated, stats)
            pairs.append((generated.query, answers_for))
        answers = ranked_union(pairs, limit=self.answer_limit)

        self.state = ViewState(trees=trees, queries=queries, answers=answers)
        self._answers_materialized = True
        self.last_refresh = stats
        self.refresh_count += 1
        return self.state

    def prepare(
        self, rebuild_graph: bool = False, budget: Optional[Budget] = None
    ) -> ViewState:
        """Bring trees and queries up to date *without* executing queries.

        The solve-only half of :meth:`refresh`: the ranking (Steiner trees,
        generated queries, α) is current afterwards, but ``state.answers``
        is left unmaterialized — the streaming read path executes queries
        lazily, and :meth:`answers` re-materializes on demand.
        """
        trees, queries, stats = self._ensure_solved(rebuild_graph, budget=budget)
        if stats.solver_runs:
            # The ranking changed; previously materialized answers are no
            # longer authoritative.
            self.state = ViewState(trees=trees, queries=queries, answers=[])
            self._answers_materialized = False
        self.last_refresh = stats
        self.refresh_count += 1
        return self.state

    def stream_answers(
        self, rebuild_graph: bool = False, budget: Optional[Budget] = None
    ) -> Iterator[AnswerTuple]:
        """Ranked answers as a lazy iterator (the pull-based read path).

        The Steiner solve (which determines the ranking) happens eagerly at
        call time, but query *execution* is deferred: each generated query
        runs only when the iterator reaches its answers, so a consumer that
        stops after the first page never pays for the remaining queries.
        (On a window-capable backend the first pull instead executes every
        cache-missing query in one windowed SELECT — a single snapshot
        round trip, so a publish landing mid-stream cannot split the
        result across two data versions.)
        Yielded answers are identical — same values, costs, provenance and
        order — to :meth:`refresh`'s :func:`~repro.engine.executor.ranked_union`
        output: queries are streamed in ascending cost order (every answer
        carries its query's cost, so the concatenation is globally sorted)
        and each answer goes through the shared
        :func:`~repro.engine.executor.project_answer` against the full
        unified column set, which
        :func:`~repro.engine.executor.union_column_plan` derives from the
        queries' output labels without executing anything.

        With a ``budget``, expiry between (or inside) query executions stops
        the stream at a query boundary and marks the budget truncated; every
        already-yielded answer remains exact.  A query interrupted mid-
        execution caches nothing, and a truncated solve is never recorded as
        the view's solve state (see :meth:`_ensure_solved`), so degraded
        reads cannot contaminate later full reads.  Expiry before the first
        answer propagates as
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        self.prepare(rebuild_graph, budget=budget)
        stats = self.last_refresh
        ordered = sorted(self.state.queries, key=lambda g: g.query.cost)
        columns, mappings = union_column_plan([g.query for g in ordered])
        limit = self.answer_limit

        def _generate() -> Iterator[AnswerTuple]:
            # Budgeted (deadline-bounded) reads stay on the per-query lazy
            # path by construction: the windowed batch is one indivisible
            # round trip with no query-boundary truncation points.
            if budget is not None:
                reason = self._union_fallback_reason(budget)
                if reason is not None and ordered:
                    active_trace().annotate_once("fallback_reason", reason)
                primed = None
            else:
                primed = self._prime_answer_cache(ordered, stats)
            yielded = 0
            for generated, mapping in zip(ordered, mappings):
                if limit is not None and yielded >= limit:
                    return
                if budget is not None and budget.expired():
                    budget.mark_truncated("stream")
                    return
                try:
                    answers = (
                        primed.get(generated.signature) if primed else None
                    )
                    if answers is None:
                        answers = self._answers_for(generated, stats, budget=budget)
                except DeadlineExceededError:
                    if yielded == 0:
                        raise
                    budget.mark_truncated("stream")  # type: ignore[union-attr]
                    return
                for answer in answers:
                    yield project_answer(answer, generated.query, mapping, columns)
                    yielded += 1
                    if limit is not None and yielded >= limit:
                        return

        return _generate()

    def _answers_for(
        self,
        generated: GeneratedQuery,
        stats: RefreshStats,
        budget: Optional[Budget] = None,
    ) -> List[AnswerTuple]:
        """Execute one generated query, or replay its cached answers.

        Cache entries are keyed by tree signature and validated against the
        data versions of every table the query touches, so table mutations
        invalidate naturally.  On reuse the answers are re-priced to the
        query's current cost (feedback moves tree costs without changing
        which tuples join).  An execution aborted by a deadline raises
        before the cache write, so partial results are never cached.
        """
        versions = self._table_versions(generated.query)
        cached = self._answer_cache.get(generated.signature)
        if cached is not None and cached.table_versions == versions:
            self._answer_cache.move_to_end(generated.signature)
            stats.queries_reused += 1
            active_trace().tally("queries_cached")
            # No copying here: ranked_union builds fresh AnswerTuples (with
            # the current query cost stamped on values and provenance) and
            # never mutates its inputs.
            return cached.answers
        with active_trace().span("execute"):
            answers = self.executor.execute(generated.query, budget=budget)
        self._answer_cache[generated.signature] = _CachedAnswers(versions, answers)
        self._answer_cache.move_to_end(generated.signature)
        while len(self._answer_cache) > self.max_cached_queries:
            self._answer_cache.popitem(last=False)
        stats.queries_executed += 1
        return answers

    def _prime_answer_cache(
        self, queries: Sequence[GeneratedQuery], stats: RefreshStats
    ) -> Optional[Dict[str, List[AnswerTuple]]]:
        """Batch-execute every cache-missing query in one windowed SELECT.

        The cold-read half of the windowed ranked-union pushdown: instead
        of one backend round trip per cache miss, all missing queries run
        as branches of a single windowed ``UNION ALL``
        (:meth:`~repro.engine.context.ExecutionContext.try_pushdown_union_raw`)
        and their raw answers — byte-identical to per-query execution —
        land in the per-signature cache.  Returns ``{signature: answers}``
        for the fetched queries (already counted in
        ``stats.queries_executed``; a primed query ran, inside one shared
        SELECT, so it is *executed*, never *reused*), or ``None`` when the
        pushdown is unavailable, the union is ineligible, or nothing is
        missing — callers then proceed exactly as before the windowed path
        existed.
        """
        if not queries:
            return None
        trace = active_trace()
        reason = self._union_fallback_reason()
        if reason is not None:
            trace.annotate_once("fallback_reason", reason)
            return None
        missing: List[Tuple[GeneratedQuery, Tuple[Tuple[str, object, int], ...]]] = []
        for generated in queries:
            versions = self._table_versions(generated.query)
            cached = self._answer_cache.get(generated.signature)
            if cached is None or cached.table_versions != versions:
                missing.append((generated, versions))
        if not missing:
            # Every query replays from the per-signature cache — no round
            # trip at all, windowed or otherwise.
            return None
        batch_reason = self.engine_context.union_fallback_reason(
            [generated.query for generated, _ in missing]
        )
        if batch_reason is not None:
            trace.annotate_once("fallback_reason", batch_reason)
            return None
        with trace.span("windowed_pushdown"):
            fetched = self.engine_context.try_pushdown_union_raw(
                [generated.query for generated, _ in missing]
            )
        if fetched is None:  # pragma: no cover - eligibility raced a mutation
            trace.annotate_once("fallback_reason", "windowed union became ineligible")
            return None
        trace.annotate_once("path", "windowed")
        trace.tally("windowed_queries", len(missing))
        primed: Dict[str, List[AnswerTuple]] = {}
        for (generated, versions), answers in zip(missing, fetched):
            self._answer_cache[generated.signature] = _CachedAnswers(versions, answers)
            self._answer_cache.move_to_end(generated.signature)
            stats.queries_executed += 1
            primed[generated.signature] = answers
        while len(self._answer_cache) > self.max_cached_queries:
            self._answer_cache.popitem(last=False)
        return primed

    def _union_fallback_reason(self, budget: Optional[Budget] = None) -> Optional[str]:
        """Why this view's reads skip the windowed union, or ``None``.

        View-level reasons (tenant overlay, deadline budget) come before
        context-level availability: the most fundamental fact is the one
        the explain log should carry.  Batch-level ineligibility (a branch
        without outputs, an off-backend relation) is probed separately in
        :meth:`_prime_answer_cache` / :meth:`answers_page`, where the
        actual query batch exists.
        """
        if not self.allow_window_pushdown:
            return "tenant overlay view: repriced per read on the Python engine"
        if self.engine_context.window_pushdown is None:
            return (
                self.engine_context.window_unavailable_reason
                or "window pushdown unavailable"
            )
        if budget is not None:
            return (
                "deadline-budgeted read: the windowed batch cannot be "
                "truncated at query boundaries"
            )
        return None

    def answers_page(
        self, limit: Optional[int] = None, offset: int = 0
    ) -> List[AnswerTuple]:
        """One k-best page of the ranked answers (``LIMIT``/``OFFSET``).

        On a window-capable backend the page is computed by one windowed
        SELECT — cost ordering, tie-breaking and pagination all run inside
        the database; otherwise (or for an ineligible union) the Python
        ranked union materializes and slices.  Either way the page equals
        ``answers()[offset : offset + limit]``: the window never reaches
        past the view's ``answer_limit`` cap, an ``offset`` past the last
        answer yields ``[]``, and ``limit=0`` is rejected — a page must be
        able to hold an answer (use :meth:`answers` for a full read).
        """
        if limit is not None and limit < 1:
            raise QueryError("answers_page limit must be at least 1")
        if offset < 0:
            raise QueryError("answers_page offset must not be negative")
        self.prepare()
        stats = self.last_refresh
        queries = self.state.queries
        cap = self.answer_limit
        if cap is not None:
            if offset >= cap:
                return []
            window = cap - offset
            effective = window if limit is None else min(limit, window)
        else:
            effective = limit
        if self.allow_window_pushdown and queries:
            ordered = sorted(queries, key=lambda g: g.query.cost)
            plain = [generated.query for generated in ordered]
            columns, mappings = union_column_plan(plain)
            trace = active_trace()
            with trace.span("windowed_pushdown"):
                pushed = self.engine_context.try_pushdown_union_ranked(
                    plain, columns, mappings, limit=effective, offset=offset
                )
            if pushed is not None:
                trace.annotate_once("path", "windowed")
                trace.tally("windowed_queries", len(plain))
                return pushed
        primed = self._prime_answer_cache(queries, stats)
        pairs = []
        for generated in queries:
            answers_for = primed.get(generated.signature) if primed else None
            if answers_for is None:
                answers_for = self._answers_for(generated, stats)
            pairs.append((generated.query, answers_for))
        all_answers = ranked_union(pairs, limit=cap)
        end = None if effective is None else offset + effective
        return all_answers[offset:end]

    def _table_versions(self, query) -> Tuple[Tuple[str, object, int], ...]:
        entries = []
        for relation in set(query.relations()):
            table = self.catalog.relation(relation)
            entries.append((relation, table, table.version))
        return tuple(sorted(entries, key=lambda entry: entry[0]))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def terminals(self) -> Tuple[str, ...]:
        """Keyword node ids of the view's query graph."""
        return self.query_graph.terminals

    @property
    def alpha(self) -> Optional[float]:
        """Cost of the k-th best tree (the VIEWBASEDALIGNER pruning radius)."""
        return self.state.alpha

    def answers(self) -> List[AnswerTuple]:
        """The ranked answers under the current solve.

        If a streaming read re-solved since the last materializing refresh,
        ``state.answers`` is unmaterialized; this accessor re-materializes
        (cheap — per-query answers replay from cache) rather than returning
        an empty list that would be indistinguishable from "no answers".
        """
        if not self._answers_materialized:
            self.refresh()
        return list(self.state.answers)

    def trees(self) -> List[SteinerTree]:
        """The retained Steiner trees of the last refresh."""
        return list(self.state.trees)

    def uses_relation(self, qualified_relation: str) -> bool:
        """Whether any retained tree touches ``qualified_relation``."""
        return any(
            tree.contains_relation(self.query_graph.graph, qualified_relation)
            for tree in self.state.trees
        )

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def trees_by_signature(self) -> Dict[str, SteinerTree]:
        """Tree signature → retained tree of the last solve (a copy).

        The multi-tenant feedback path merges this base map with the trees
        of a tenant-priced re-solve so annotations on answers produced under
        *either* ranking can be generalized.
        """
        return dict(self._trees_by_signature)

    def feedback_generalizer(self) -> FeedbackGeneralizer:
        """A generalizer mapping this view's answer annotations to tree feedback."""
        return FeedbackGeneralizer(self.terminals, dict(self._trees_by_signature))

    def annotate(
        self,
        answer: AnswerTuple,
        kind: AnnotationKind,
        other: Optional[AnswerTuple] = None,
    ) -> FeedbackEvent:
        """Convert one answer annotation into a tree-level feedback event."""
        annotation = AnswerAnnotation(answer=answer, kind=kind, other=other)
        return self.feedback_generalizer().generalize(annotation)
