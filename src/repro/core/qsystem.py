"""Deprecated eager facade over :class:`repro.api.service.QService`.

:class:`QSystem` was the original end-to-end entry point (paper Figure 1).
The supported surface is now the typed, pull-based :mod:`repro.api`;
``QSystem`` remains as a thin compatibility shim that

* delegates every operation to an owned :class:`~repro.api.service.QService`;
* preserves the historical **eager** consistency model by forcing a pull of
  every view after each mutation (``give_feedback`` / ``register_source`` /
  ``bootstrap_alignments``), so code written against the seed semantics —
  "all views are fresh after any mutation" — keeps observing them;
* emits a :class:`DeprecationWarning` on construction.

Migration table (old → new) lives in the README's "Public API" section.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from ..alignment.base import AlignmentResult
from ..alignment.registration import SourceRegistrar
from ..api.types import (
    FeedbackRequest,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.service import QService
from ..datastore.database import Catalog, DataSource
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..graph.search_graph import SearchGraph
from ..learning.feedback import AnnotationKind, FeedbackEvent, FeedbackLog
from ..matching.base import BaseMatcher, Correspondence
from ..matching.ensemble import MatcherEnsemble
from .view import RankedView

#: Historical name of the session configuration, kept as an alias so that
#: ``QSystemConfig(top_k=..., top_y=...)`` call sites continue to work.
QSystemConfig = ServiceConfig


class QSystem:
    """Deprecated: use :class:`repro.api.QService`.

    End-to-end keyword-search data integration with automatic source
    incorporation, in the seed's eager consistency model.
    """

    def __init__(
        self,
        sources: Optional[Iterable[DataSource]] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        config: Optional[QSystemConfig] = None,
    ) -> None:
        warnings.warn(
            "QSystem is deprecated; use repro.api.QService (typed requests, "
            "lazy pull-based views) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported here rather than at module scope: the service package
        # imports repro.core.view, so a module-level import would be cyclic.
        from ..api.service import QService

        self._service = QService(sources=sources, matchers=matchers, config=config)

    # ------------------------------------------------------------------
    # Delegated session state
    # ------------------------------------------------------------------
    @property
    def service(self) -> QService:
        """The underlying service session (the supported API)."""
        return self._service

    @property
    def config(self) -> QSystemConfig:
        return self._service.config

    @property
    def catalog(self) -> Catalog:
        return self._service.catalog

    @property
    def graph(self) -> SearchGraph:
        return self._service.graph

    @property
    def matchers(self) -> List[BaseMatcher]:
        return self._service.matchers

    @property
    def ensemble(self) -> MatcherEnsemble:
        return self._service.ensemble

    @property
    def registrar(self) -> SourceRegistrar:
        return self._service.registrar

    @property
    def feedback_log(self) -> FeedbackLog:
        return self._service.feedback_log

    @property
    def engine_context(self) -> ExecutionContext:
        return self._service.engine_context

    @property
    def views(self) -> Dict[str, RankedView]:
        """Name → view mapping (seed shape; built from the view registry)."""
        return self._service.views.by_name()

    # ------------------------------------------------------------------
    # Sources and alignments
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> None:
        """Add a source to the catalog and graph *without* running alignment."""
        self._service.add_source(source)

    def bootstrap_alignments(self, top_y: Optional[int] = None) -> List[Correspondence]:
        """Run the matcher ensemble and install edges, refreshing all views."""
        correspondences = self._service.bootstrap_alignments(top_y=top_y)
        self._service.refresh_all_views(force=True)
        return correspondences

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(
        self, keywords: Sequence[str], k: Optional[int] = None, name: Optional[str] = None
    ) -> RankedView:
        """Create (and refresh) a ranked view for a keyword query."""
        info = self._service.create_view(
            QueryRequest(keywords=tuple(keywords), k=k, name=name)
        )
        return self._service.view(info.view_id)

    def _latest_view(self) -> Optional[RankedView]:
        """Deprecated internal accessor; the registry's creation order rules."""
        record = self._service.views.latest()
        return record.view if record is not None else None

    # ------------------------------------------------------------------
    # Registration of new sources
    # ------------------------------------------------------------------
    def register_source(
        self,
        source: DataSource,
        strategy: str = "view_based",
        view: Optional[RankedView] = None,
        matcher: Optional[BaseMatcher] = None,
        value_filter: bool = False,
        max_relations: Optional[int] = 5,
    ) -> AlignmentResult:
        """Register a new source, align it, and eagerly refresh every view."""
        response = self._service.register_source(
            RegisterSourceRequest(
                source=source,
                strategy=strategy,
                view=view,
                matcher=matcher,
                value_filter=value_filter,
                max_relations=max_relations,
            )
        )
        self._service.refresh_all_views(force=True)
        return response.alignment

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def give_feedback(
        self,
        view: RankedView,
        answer: AnswerTuple,
        kind: AnnotationKind = AnnotationKind.VALID,
        other: Optional[AnswerTuple] = None,
        replay: int = 1,
    ) -> List[FeedbackEvent]:
        """Apply user feedback on one answer, then eagerly refresh every view."""
        response = self._service.feedback(
            FeedbackRequest(view=view, answer=answer, kind=kind, other=other, replay=replay)
        )
        self._service.refresh_all_views(force=True)
        return list(response.events)

    def apply_feedback_events(
        self, view: RankedView, events: Sequence[FeedbackEvent], repetitions: int = 1
    ) -> None:
        """Apply pre-built feedback events, then eagerly refresh every view."""
        self._service.apply_feedback_events(view, events, repetitions)
        self._service.refresh_all_views(force=True)
