"""The Q system facade (paper Figure 1).

:class:`QSystem` wires together the whole pipeline:

* a catalog of registered data sources and a search graph built from their
  metadata;
* matcher(s) that propose association edges, either in a one-off bootstrap
  pass (the Section 5.2 setup) or when a new source is registered;
* keyword views with ranked answers;
* the registration service with the EXHAUSTIVE / VIEWBASED / PREFERENTIAL
  aligner strategies;
* feedback-driven learning of edge costs through MIRA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..alignment.base import AlignmentResult, BaseAligner, install_associations
from ..alignment.exhaustive import ExhaustiveAligner
from ..alignment.preferential import PreferentialAligner
from ..alignment.registration import SourceRegistrar
from ..alignment.view_based import ViewBasedAligner
from ..datastore.database import Catalog, DataSource
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..exceptions import QError, RegistrationError
from ..graph.query_graph import QueryGraphBuilder
from ..graph.search_graph import GraphConfig, SearchGraph
from ..learning.feedback import AnnotationKind, FeedbackEvent, FeedbackLog
from ..learning.mira import OnlineLearner
from ..matching.base import BaseMatcher, Correspondence
from ..matching.ensemble import MatcherEnsemble
from ..matching.mad import MadMatcher
from ..matching.metadata_matcher import MetadataMatcher
from ..matching.value_overlap import ValueOverlapFilter
from .view import RankedView


@dataclass
class QSystemConfig:
    """Top-level knobs of the Q system."""

    top_k: int = 5
    top_y: int = 2
    feedback_window: int = 50
    graph: GraphConfig = field(default_factory=GraphConfig)
    answer_limit: Optional[int] = 200


class QSystem:
    """End-to-end keyword-search data integration with automatic source incorporation."""

    def __init__(
        self,
        sources: Optional[Iterable[DataSource]] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        config: Optional[QSystemConfig] = None,
    ) -> None:
        self.config = config or QSystemConfig()
        self.catalog = Catalog(sources)
        self.graph = SearchGraph(config=self.config.graph)
        self.graph.add_catalog(self.catalog)
        self.matchers: List[BaseMatcher] = list(matchers) if matchers else [MetadataMatcher(), MadMatcher()]
        self.ensemble = MatcherEnsemble(self.matchers, top_y=self.config.top_y)
        self.registrar = SourceRegistrar(self.catalog, self.graph)
        self.views: Dict[str, RankedView] = {}
        self.feedback_log = FeedbackLog(window_size=self.config.feedback_window)
        self._builder: Optional[QueryGraphBuilder] = None
        # One execution context for the whole system: all views share its
        # scan and join-index caches; registration events invalidate it.
        self.engine_context = ExecutionContext(self.catalog)
        self.registrar.add_listener(self._on_registration)

    # ------------------------------------------------------------------
    # Sources and alignments
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> None:
        """Add a source to the catalog and graph *without* running alignment.

        Used when setting up the initial, already-interlinked databases
        (their joins come from foreign keys and hand-coded associations).
        """
        self.catalog.add_source(source)
        self.graph.add_source(source)
        self._invalidate_builder()

    def bootstrap_alignments(self, top_y: Optional[int] = None) -> List[Correspondence]:
        """Run the matcher ensemble over all current tables and install edges.

        This reproduces the Section 5.2 setup: start from a schema graph
        with no association edges, run the matchers, and record the top-Y
        most promising alignments per attribute as association edges.
        """
        y = top_y if top_y is not None else self.config.top_y
        ensemble = MatcherEnsemble(self.matchers, top_y=y)
        alignments = ensemble.match_tables(self.catalog.all_tables())
        correspondences: List[Correspondence] = []
        for alignment in alignments:
            for matcher_name, confidence in alignment.confidences.items():
                correspondences.append(
                    Correspondence(
                        source=alignment.source,
                        target=alignment.target,
                        confidence=confidence,
                        matcher=matcher_name,
                    )
                )
        install_associations(self.graph, correspondences)
        self._refresh_all_views(rebuild_graph=True)
        return correspondences

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(self, keywords: Sequence[str], k: Optional[int] = None, name: Optional[str] = None) -> RankedView:
        """Create (and refresh) a ranked view for a keyword query."""
        view = RankedView(
            keywords,
            self.catalog,
            self.graph,
            k=k or self.config.top_k,
            builder=self._query_builder(),
            answer_limit=self.config.answer_limit,
            engine_context=self.engine_context,
        )
        view.refresh()
        view_name = name or " ".join(keywords)
        self.views[view_name] = view
        return view

    def _query_builder(self) -> QueryGraphBuilder:
        if self._builder is None:
            self._builder = QueryGraphBuilder(self.catalog)
        return self._builder

    def _invalidate_builder(self) -> None:
        self._builder = None

    def _refresh_all_views(self, rebuild_graph: bool = False) -> None:
        for view in self.views.values():
            view.refresh(rebuild_graph=rebuild_graph)

    # ------------------------------------------------------------------
    # Registration of new sources
    # ------------------------------------------------------------------
    def register_source(
        self,
        source: DataSource,
        strategy: str = "view_based",
        view: Optional[RankedView] = None,
        matcher: Optional[BaseMatcher] = None,
        value_filter: bool = False,
        max_relations: Optional[int] = 5,
    ) -> AlignmentResult:
        """Register a new source and align it against the existing graph.

        Parameters
        ----------
        source:
            The new data source.
        strategy:
            ``"exhaustive"``, ``"view_based"`` or ``"preferential"``.
        view:
            For the view-based strategy, the existing view whose information
            need drives the alignment; defaults to the most recently created
            view.
        matcher:
            Base matcher; defaults to the system's first configured matcher.
        value_filter:
            If ``True``, restrict comparisons to attribute pairs with value
            overlap (requires indexing all current tables plus the new one).
        max_relations:
            Budget for the preferential strategy.
        """
        matcher = matcher or self.matchers[0]
        overlap_filter = None
        if value_filter:
            tables = self.catalog.all_tables() + list(source.tables())
            overlap_filter = ValueOverlapFilter.from_tables(tables)

        aligner = self._make_aligner(strategy, matcher, view, overlap_filter, max_relations)
        result = self.registrar.register(source, aligner)
        self._invalidate_builder()
        self._refresh_all_views(rebuild_graph=True)
        return result

    def _make_aligner(
        self,
        strategy: str,
        matcher: BaseMatcher,
        view: Optional[RankedView],
        value_filter: Optional[ValueOverlapFilter],
        max_relations: Optional[int],
    ) -> BaseAligner:
        strategy = strategy.lower()
        if strategy == "exhaustive":
            return ExhaustiveAligner(matcher, top_y=self.config.top_y, value_filter=value_filter)
        if strategy == "preferential":
            return PreferentialAligner(
                matcher,
                top_y=self.config.top_y,
                value_filter=value_filter,
                max_relations=max_relations,
            )
        if strategy == "view_based":
            target_view = view or self._latest_view()
            if target_view is None:
                raise RegistrationError(
                    "view_based registration requires an existing view; create one first"
                )
            alpha = target_view.alpha
            if alpha is None:
                raise RegistrationError("the driving view has no answers; refresh it first")
            # The aligner operates on the persistent search graph, which has
            # no keyword nodes; the α-neighborhood is therefore computed in
            # the view's expanded query graph.
            return ViewBasedAligner(
                matcher,
                keyword_nodes=target_view.terminals,
                alpha=alpha,
                top_y=self.config.top_y,
                value_filter=value_filter,
                neighborhood_graph=target_view.query_graph.graph,
            )
        raise QError(f"unknown alignment strategy {strategy!r}")

    def _latest_view(self) -> Optional[RankedView]:
        if not self.views:
            return None
        return next(reversed(self.views.values()))  # type: ignore[call-overload]

    def _on_registration(self, source: DataSource, result: AlignmentResult) -> None:
        # A new source changes both the data and the graph structure: drop
        # the engine's shared scan/join-index caches and every view's
        # per-signature answer cache.  The views themselves are refreshed by
        # register_source after the registrar returns.
        del source, result
        self.engine_context.invalidate()
        for view in self.views.values():
            view.invalidate_cache()

    def _on_learning_update(self, result) -> None:
        # Edge costs moved: notify every view so its next refresh re-solves
        # (cached query answers stay valid and are merely re-priced).
        del result
        for view in self.views.values():
            view.on_weights_updated()

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def give_feedback(
        self,
        view: RankedView,
        answer: AnswerTuple,
        kind: AnnotationKind = AnnotationKind.VALID,
        other: Optional[AnswerTuple] = None,
        replay: int = 1,
    ) -> List[FeedbackEvent]:
        """Apply user feedback on one answer of a view.

        The annotation is generalized to the producing query tree, logged,
        and fed to the MIRA learner operating on the view's query graph
        (whose weight vector is shared with the search graph, so all views
        see the adjusted costs).  ``replay`` controls how many times the
        event is applied in a row.
        """
        event = view.annotate(answer, kind, other=other)
        self.feedback_log.add(event)
        learner = OnlineLearner(
            view.query_graph.graph,
            k=self.config.top_k,
            listeners=[self._on_learning_update],
        )
        learner.replay([event], replay)
        self._refresh_all_views()
        return [event]

    def apply_feedback_events(
        self, view: RankedView, events: Sequence[FeedbackEvent], repetitions: int = 1
    ) -> None:
        """Apply pre-built feedback events (used by the experiment harnesses)."""
        learner = OnlineLearner(
            view.query_graph.graph,
            k=self.config.top_k,
            listeners=[self._on_learning_update],
        )
        for event in events:
            self.feedback_log.add(event)
        learner.replay(list(events), repetitions)
        self._refresh_all_views()
