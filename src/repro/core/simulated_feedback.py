"""Simulated domain-expert feedback (paper Section 5.2).

"For each query, we generate one feedback response, marking one answer that
only makes use of edges in the gold standard.  Since the gold standard
alignments are known during evaluation, this feedback response step can be
simulated on behalf of a user."

:func:`gold_target_tree` finds, for a keyword view, the lowest-cost Steiner
tree that uses only gold-standard association edges (plus the always-valid
zero-cost, keyword-match and foreign-key edges).  The resulting tree is the
target ``T_r`` of a :class:`~repro.learning.feedback.FeedbackEvent`, exactly
as if the user had marked one of its answers as valid.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import SteinerError
from ..graph.edges import EdgeKind
from ..graph.search_graph import SearchGraph
from ..learning.feedback import FeedbackEvent
from ..steiner.topk import default_solver
from ..steiner.tree import SteinerTree
from .evaluation import GoldStandard, edge_attribute_pair
from .view import RankedView


def gold_restricted_graph(graph: SearchGraph, gold: GoldStandard) -> SearchGraph:
    """A copy of ``graph`` keeping only gold association edges.

    Zero-cost membership edges, keyword-match edges and foreign-key edges are
    always kept; association edges are kept only if their attribute pair is
    in the gold standard.
    """
    restricted = graph.copy(share_weights=True)
    for edge in list(restricted.edges(EdgeKind.ASSOCIATION)):
        pair = edge_attribute_pair(restricted, edge)
        if pair is None or pair not in gold.pairs:
            restricted.remove_edge(edge.edge_id)
    return restricted


def gold_target_tree(
    graph: SearchGraph, terminals: Sequence[str], gold: GoldStandard
) -> Optional[SteinerTree]:
    """The cheapest Steiner tree over ``terminals`` using only gold associations.

    Returns ``None`` when the terminals cannot be connected through gold
    edges alone (e.g. the matchers failed to recall a needed alignment).
    The returned tree references edge ids of the original ``graph`` and can
    be re-costed there.
    """
    restricted = gold_restricted_graph(graph, gold)
    usable_terminals = [t for t in terminals if restricted.has_node(t)]
    if len(usable_terminals) < len(list(terminals)):
        return None
    try:
        tree = default_solver(restricted, usable_terminals)
    except SteinerError:
        return None
    return SteinerTree.from_edges(graph, tree.edge_ids, usable_terminals)


def simulated_feedback_for_view(view: RankedView, gold: GoldStandard) -> Optional[FeedbackEvent]:
    """One simulated feedback event for ``view``: its gold tree marked valid."""
    graph = view.query_graph.graph
    tree = gold_target_tree(graph, view.terminals, gold)
    if tree is None:
        return None
    return FeedbackEvent(terminals=view.terminals, target_tree=tree)


def simulated_feedback_for_queries(
    system,
    keyword_queries: Sequence[Sequence[str]],
    gold: GoldStandard,
    k: Optional[int] = None,
) -> List[FeedbackEvent]:
    """Create one view + simulated feedback event per keyword query.

    Views that cannot be connected through gold edges are skipped, mirroring
    the paper's protocol of providing feedback only where a gold-consistent
    answer exists.

    Parameters
    ----------
    system:
        A :class:`~repro.core.qsystem.QSystem`.
    keyword_queries:
        The keyword queries to create views for.
    gold:
        The gold standard alignments.
    k:
        Optional per-view ``k`` override.
    """
    events: List[FeedbackEvent] = []
    for keywords in keyword_queries:
        view = system.create_view(list(keywords), k=k)
        event = simulated_feedback_for_view(view, gold)
        if event is not None:
            events.append(event)
    return events
