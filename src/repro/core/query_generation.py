"""Translating Steiner trees into conjunctive queries (paper Section 2.2).

Each Steiner tree in the query graph represents one way of joining relations
to answer the keyword query:

* every relation node in the tree — or reachable from a tree node through a
  zero-cost membership edge — becomes a query atom;
* every non-zero-cost edge between attribute nodes (association edge) and
  every foreign-key edge becomes an equi-join predicate;
* every keyword match on a data value becomes a selection predicate on the
  value's attribute;
* the select-list contains the attributes the tree touches, so that answers
  surface the values that made the tree relevant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datastore.query import ConjunctiveQuery
from ..exceptions import QueryError
from ..graph.edges import Edge, EdgeKind
from ..graph.nodes import Node, NodeKind
from ..graph.search_graph import SearchGraph
from ..steiner.tree import SteinerTree


def tree_signature(tree: SteinerTree) -> str:
    """A stable identifier for a tree, derived from its edge set."""
    digest = hashlib.sha1("|".join(sorted(tree.edge_ids)).encode("utf-8")).hexdigest()
    return f"tree:{digest[:12]}"


@dataclass
class GeneratedQuery:
    """A conjunctive query generated from a Steiner tree."""

    query: ConjunctiveQuery
    tree: SteinerTree
    signature: str


class QueryGenerator:
    """Generates conjunctive queries from Steiner trees of a query graph."""

    def __init__(self, graph: SearchGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, tree: SteinerTree) -> GeneratedQuery:
        """Generate the conjunctive query of one Steiner tree."""
        graph = self.graph
        signature = tree_signature(tree)

        relations = self._collect_relations(tree)
        if not relations:
            raise QueryError("tree touches no relations; cannot generate a query")

        query = ConjunctiveQuery(cost=tree.cost, provenance=signature)
        aliases: Dict[str, str] = {}
        used_aliases: Set[str] = set()
        for relation in sorted(relations):
            alias = relation.split(".")[-1]
            if alias in used_aliases:
                suffix = 2
                while f"{alias}_{suffix}" in used_aliases:
                    suffix += 1
                alias = f"{alias}_{suffix}"
            used_aliases.add(alias)
            aliases[relation] = alias
            query.add_atom(relation, alias)

        self._add_joins(tree, query, aliases)
        selected_attributes = self._add_selections(tree, query, aliases)
        self._add_outputs(tree, query, aliases, selected_attributes)
        return GeneratedQuery(query=query, tree=tree, signature=signature)

    def generate_all(self, trees: Sequence[SteinerTree]) -> List[GeneratedQuery]:
        """Generate queries for several trees, skipping any that fail."""
        generated: List[GeneratedQuery] = []
        for tree in trees:
            try:
                generated.append(self.generate(tree))
            except QueryError:
                continue
        return generated

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _collect_relations(self, tree: SteinerTree) -> Set[str]:
        relations: Set[str] = set()
        for node_id in tree.nodes(self.graph):
            node = self.graph.node(node_id)
            if node.kind in (NodeKind.RELATION, NodeKind.ATTRIBUTE, NodeKind.VALUE):
                if node.relation:
                    relations.add(node.relation)
        return relations

    def _add_joins(
        self, tree: SteinerTree, query: ConjunctiveQuery, aliases: Dict[str, str]
    ) -> None:
        seen: Set[Tuple[str, str, str, str]] = set()
        for edge in tree.edges(self.graph):
            if edge.kind is EdgeKind.ASSOCIATION:
                node_u = self.graph.node(edge.u)
                node_v = self.graph.node(edge.v)
                if (
                    node_u.kind is NodeKind.ATTRIBUTE
                    and node_v.kind is NodeKind.ATTRIBUTE
                    and node_u.relation
                    and node_v.relation
                    and node_u.relation != node_v.relation
                ):
                    key = (node_u.relation, node_u.attribute or "", node_v.relation, node_v.attribute or "")
                    if key in seen or (key[2], key[3], key[0], key[1]) in seen:
                        continue
                    seen.add(key)
                    query.add_join(
                        aliases[node_u.relation],
                        node_u.attribute or "",
                        aliases[node_v.relation],
                        node_v.attribute or "",
                    )
            elif edge.kind is EdgeKind.FOREIGN_KEY:
                fk = edge.metadata.get("foreign_key")
                if not fk:
                    continue
                src_rel, src_attr, dst_rel, dst_attr = fk  # type: ignore[misc]
                node_u = self.graph.node(edge.u)
                node_v = self.graph.node(edge.v)
                # Foreign-key metadata stores local relation names; resolve
                # them against the edge's relation nodes.
                rel_u, rel_v = node_u.relation, node_v.relation
                if rel_u is None or rel_v is None:
                    continue
                if rel_u.endswith(f".{src_rel}") or rel_u == src_rel:
                    left_rel, right_rel = rel_u, rel_v
                    left_attr, right_attr = src_attr, dst_attr
                else:
                    left_rel, right_rel = rel_v, rel_u
                    left_attr, right_attr = src_attr, dst_attr
                if left_rel not in aliases or right_rel not in aliases:
                    continue
                key = (left_rel, left_attr, right_rel, right_attr)
                if key in seen or (key[2], key[3], key[0], key[1]) in seen:
                    continue
                seen.add(key)
                query.add_join(aliases[left_rel], left_attr, aliases[right_rel], right_attr)

    def _add_selections(
        self, tree: SteinerTree, query: ConjunctiveQuery, aliases: Dict[str, str]
    ) -> Set[Tuple[str, str]]:
        """Selections from keyword matches; returns the attributes they touch."""
        touched: Set[Tuple[str, str]] = set()
        for edge in tree.edges(self.graph):
            if edge.kind is not EdgeKind.KEYWORD_MATCH:
                continue
            node_u = self.graph.node(edge.u)
            node_v = self.graph.node(edge.v)
            keyword_node = node_u if node_u.kind is NodeKind.KEYWORD else node_v
            target_node = node_v if keyword_node is node_u else node_u
            if target_node.kind is NodeKind.VALUE and target_node.relation and target_node.attribute:
                if target_node.relation in aliases:
                    query.add_selection(
                        aliases[target_node.relation],
                        target_node.attribute,
                        target_node.label,
                        mode="equals",
                    )
                    touched.add((target_node.relation, target_node.attribute))
            elif (
                target_node.kind is NodeKind.ATTRIBUTE
                and target_node.relation
                and target_node.attribute
            ):
                touched.add((target_node.relation, target_node.attribute))
        return touched

    def _add_outputs(
        self,
        tree: SteinerTree,
        query: ConjunctiveQuery,
        aliases: Dict[str, str],
        selected_attributes: Set[Tuple[str, str]],
    ) -> None:
        output_attrs: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()

        def add(relation: str, attribute: str) -> None:
            key = (relation, attribute)
            if key not in seen and relation in aliases:
                seen.add(key)
                output_attrs.append(key)

        # Attributes explicitly in the tree come first, then selection targets.
        for node_id in tree.nodes(self.graph):
            node = self.graph.node(node_id)
            if node.kind is NodeKind.ATTRIBUTE and node.relation and node.attribute:
                add(node.relation, node.attribute)
        for relation, attribute in sorted(selected_attributes):
            add(relation, attribute)

        if not output_attrs:
            # Fall back to every attribute the graph knows for each atom's
            # relation, so that the answer table is never empty.
            for atom in query.atoms:
                for attr_node in self.graph.attribute_nodes_of(atom.relation):
                    if attr_node.attribute:
                        add(atom.relation, attr_node.attribute)

        used_labels: Set[str] = set()
        for relation, attribute in output_attrs:
            # Prefer the bare attribute name as the label (it is what the
            # disjoint union aligns columns on); qualify it only on clashes
            # within this query's own select-list.
            label = attribute if attribute not in used_labels else f"{aliases[relation]}.{attribute}"
            used_labels.add(label)
            query.add_output(aliases[relation], attribute, label=label)
