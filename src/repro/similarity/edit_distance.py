"""Edit-distance based string similarity.

The paper mentions edit distance as one of the alternative keyword
similarity metrics (Section 2.2).  We provide classic Levenshtein distance,
a normalized similarity in ``[0, 1]``, and the Jaro–Winkler similarity which
is widely used by metadata schema matchers for attribute-name comparison.
"""

from __future__ import annotations

from functools import lru_cache


def levenshtein_distance(a: str, b: str) -> int:
    """Return the Levenshtein (edit) distance between ``a`` and ``b``.

    Uses the standard two-row dynamic program: ``O(len(a) * len(b))`` time,
    ``O(min(len(a), len(b)))`` space.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if char_a == char_b else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Normalized edit similarity ``1 - distance / max(len)`` in ``[0, 1]``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


@lru_cache(maxsize=65536)
def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings, in ``[0, 1]`` (memoized)."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len_a
    b_matched = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if not a_matched[i]:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


@lru_cache(maxsize=65536)
def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro–Winkler similarity, boosting strings that share a common prefix.

    Parameters
    ----------
    a, b:
        Strings to compare (case-sensitive; callers usually lowercase first).
    prefix_scale:
        How much the common-prefix bonus contributes (standard value 0.1).
    max_prefix:
        Maximum prefix length to consider for the bonus (standard value 4).
    """
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
