"""Set-based similarity measures over tokens and value sets.

Used for (a) token-level label similarity in the metadata matcher, and
(b) instance-level value-overlap similarity between attributes (the basis of
the value-overlap filter and a feature of the ensemble matcher).
"""

from __future__ import annotations

from typing import Iterable, Set

from .tokenize import token_set


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` between two collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def containment(a: Iterable, b: Iterable) -> float:
    """Containment of A in B: ``|A ∩ B| / |A|`` (1.0 if A is empty and B is not).

    Containment is more appropriate than Jaccard when one attribute's value
    set is a small subset of another (a common pattern with cross-reference
    tables), because Jaccard punishes the size asymmetry.
    """
    set_a, set_b = set(a), set(b)
    if not set_a:
        return 1.0 if set_b else 0.0
    return len(set_a & set_b) / len(set_a)


def max_containment(a: Iterable, b: Iterable) -> float:
    """Symmetric containment: ``max(containment(A, B), containment(B, A))``."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    return max(intersection / len(set_a), intersection / len(set_b))


def token_jaccard(label_a: str, label_b: str) -> float:
    """Jaccard similarity between the token sets of two labels.

    ``token_set`` is memoized, so repeated label comparisons only pay for
    the set algebra.
    """
    return jaccard(token_set(label_a), token_set(label_b))


def overlap_count(a: Iterable, b: Iterable) -> int:
    """Number of shared distinct elements between two collections."""
    set_a: Set = set(a)
    set_b: Set = set(b)
    return len(set_a & set_b)
