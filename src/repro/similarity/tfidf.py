"""tf-idf keyword similarity.

The default keyword similarity metric used when expanding a keyword query
into a query graph (paper Section 2.2): each keyword is matched against
schema labels and indexed data values; closer matches get lower *mismatch
cost*.

The corpus statistics (document frequencies) come from a
:class:`~repro.datastore.indexes.TokenIndex` built over the catalog, but the
scorer also works standalone with a corpus supplied as an iterable of
strings.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Optional

from .tokenize import tokenize


class TfIdfScorer:
    """Cosine similarity between tf-idf vectors of short strings.

    Parameters
    ----------
    corpus:
        Optional iterable of documents (strings) used to estimate document
        frequencies.  Documents can also be added later via
        :meth:`add_document`.
    smoothing:
        Additive smoothing constant for inverse document frequency, so that
        unseen tokens still receive a finite (high) idf.
    """

    def __init__(self, corpus: Optional[Iterable[str]] = None, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing
        self.document_count = 0
        self._document_frequency: Counter = Counter()
        for document in corpus or ():
            self.add_document(document)

    # ------------------------------------------------------------------
    # Corpus maintenance
    # ------------------------------------------------------------------
    def add_document(self, document: str) -> None:
        """Add one document's distinct tokens to the corpus statistics."""
        self.document_count += 1
        for token in set(tokenize(document)):
            self._document_frequency[token] += 1

    def remove_document(self, document: str) -> None:
        """Retract one previously added document from the corpus statistics.

        The scorer keeps only aggregate counts, so retraction re-tokenizes
        the document text; removing a document that was never added leaves
        frequencies clamped at zero rather than going negative.
        """
        if self.document_count > 0:
            self.document_count -= 1
        for token in set(tokenize(document)):
            count = self._document_frequency.get(token, 0)
            if count <= 1:
                self._document_frequency.pop(token, None)
            else:
                self._document_frequency[token] = count - 1

    def document_frequency(self, token: str) -> int:
        """Number of corpus documents containing ``token``."""
        return self._document_frequency.get(token.lower(), 0)

    def inverse_document_frequency(self, token: str) -> float:
        """Smoothed idf of ``token`` (always > 0)."""
        df = self.document_frequency(token)
        return math.log(
            (self.document_count + self.smoothing) / (df + self.smoothing)
        ) + 1.0

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def vector(self, text: str) -> Dict[str, float]:
        """tf-idf vector of ``text`` as a token -> weight mapping."""
        counts = Counter(tokenize(text))
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            token: (count / total) * self.inverse_document_frequency(token)
            for token, count in counts.items()
        }

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of the tf-idf vectors of ``a`` and ``b``, in [0, 1]."""
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        if not vec_a or not vec_b:
            return 0.0
        dot = sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())
        norm_a = math.sqrt(sum(w * w for w in vec_a.values()))
        norm_b = math.sqrt(sum(w * w for w in vec_b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)

    def mismatch_cost(self, keyword: str, candidate: str) -> float:
        """Mismatch cost in ``[0, 1]``: lower for closer matches.

        This is the ``s_i`` term attached to keyword-match edges in the
        query graph (Figure 3 of the paper).
        """
        return 1.0 - self.similarity(keyword, candidate)
