"""Tokenization helpers shared by the similarity metrics and matchers.

Schema labels in real databases mix conventions: ``entry_ac``, ``go_id``,
``InterPro2GO``, ``pubTitle``.  The tokenizer splits on non-alphanumeric
characters, camel-case boundaries and digit boundaries so that, e.g.,
``InterPro2GO`` tokenizes to ``["inter", "pro", "2", "go"]`` and matches the
label ``go`` of another attribute.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_SPLIT_RE = re.compile(r"[^0-9A-Za-z]+")
_DIGIT_BOUNDARY_RE = re.compile(r"(?<=[A-Za-z])(?=\d)|(?<=\d)(?=[A-Za-z])")

# Tokens that carry no discriminative information for schema matching.
STOPWORDS = frozenset(
    {
        "a",
        "an",
        "and",
        "at",
        "by",
        "for",
        "from",
        "in",
        "is",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)


def tokenize(text: str, drop_stopwords: bool = False) -> List[str]:
    """Split ``text`` into lowercase tokens.

    Splitting happens on whitespace/punctuation, camel-case boundaries and
    letter/digit boundaries.  Empty tokens are dropped.

    Parameters
    ----------
    text:
        The string to tokenize.
    drop_stopwords:
        If ``True``, common English stopwords are removed.
    """
    if not text:
        return []
    pieces: List[str] = []
    for chunk in _SPLIT_RE.split(str(text)):
        if not chunk:
            continue
        chunk = _CAMEL_RE.sub(" ", chunk)
        chunk = _DIGIT_BOUNDARY_RE.sub(" ", chunk)
        pieces.extend(p for p in chunk.split() if p)
    tokens = [p.lower() for p in pieces]
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def token_set(text: str, drop_stopwords: bool = False) -> frozenset:
    """Return the set of tokens of ``text``."""
    return frozenset(tokenize(text, drop_stopwords=drop_stopwords))


def normalize_label(text: str) -> str:
    """Canonical single-string form of a schema label (tokens joined by ``_``)."""
    return "_".join(tokenize(text))


def character_ngrams(text: str, n: int = 3, pad: bool = True) -> Tuple[str, ...]:
    """Return the character n-grams of ``text`` (lowercased).

    Parameters
    ----------
    text:
        Input string.
    n:
        The n-gram length (must be >= 1).
    pad:
        If ``True``, the string is padded with ``n - 1`` boundary markers
        (``#``) on each side, which gives extra weight to prefixes and
        suffixes — the convention used by most n-gram schema matchers.
    """
    if n < 1:
        raise ValueError("n-gram length must be >= 1")
    normalized = str(text).lower()
    if pad and n > 1:
        padding = "#" * (n - 1)
        normalized = f"{padding}{normalized}{padding}"
    if len(normalized) < n:
        return (normalized,) if normalized else ()
    return tuple(normalized[i : i + n] for i in range(len(normalized) - n + 1))
