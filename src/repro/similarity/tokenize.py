"""Tokenization helpers shared by the similarity metrics and matchers.

Schema labels in real databases mix conventions: ``entry_ac``, ``go_id``,
``InterPro2GO``, ``pubTitle``.  The tokenizer splits on non-alphanumeric
characters, camel-case boundaries and digit boundaries so that, e.g.,
``InterPro2GO`` tokenizes to ``["inter", "pro", "2", "go"]`` and matches the
label ``go`` of another attribute.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Tuple

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_SPLIT_RE = re.compile(r"[^0-9A-Za-z]+")
_DIGIT_BOUNDARY_RE = re.compile(r"(?<=[A-Za-z])(?=\d)|(?<=\d)(?=[A-Za-z])")

# Tokens that carry no discriminative information for schema matching.
STOPWORDS = frozenset(
    {
        "a",
        "an",
        "and",
        "at",
        "by",
        "for",
        "from",
        "in",
        "is",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)


@lru_cache(maxsize=65536)
def _tokenize_cached(text: str, drop_stopwords: bool) -> Tuple[str, ...]:
    """Tokenization core, memoized (tokenization is pure and heavily repeated)."""
    pieces: List[str] = []
    for chunk in _SPLIT_RE.split(text):
        if not chunk:
            continue
        chunk = _CAMEL_RE.sub(" ", chunk)
        chunk = _DIGIT_BOUNDARY_RE.sub(" ", chunk)
        pieces.extend(p for p in chunk.split() if p)
    tokens = tuple(p.lower() for p in pieces)
    if drop_stopwords:
        tokens = tuple(t for t in tokens if t not in STOPWORDS)
    return tokens


def tokenize(text: str, drop_stopwords: bool = False) -> List[str]:
    """Split ``text`` into lowercase tokens.

    Splitting happens on whitespace/punctuation, camel-case boundaries and
    letter/digit boundaries.  Empty tokens are dropped.  Results are
    memoized internally — the same labels and values are tokenized over and
    over by the matchers and the keyword predicates.

    Parameters
    ----------
    text:
        The string to tokenize.
    drop_stopwords:
        If ``True``, common English stopwords are removed.
    """
    if not text:
        return []
    return list(_tokenize_cached(str(text), drop_stopwords))


@lru_cache(maxsize=65536)
def _token_set_cached(text: str, drop_stopwords: bool) -> frozenset:
    return frozenset(_tokenize_cached(text, drop_stopwords))


def token_set(text: str, drop_stopwords: bool = False) -> frozenset:
    """Return the set of tokens of ``text`` (memoized)."""
    if not text:
        return frozenset()
    return _token_set_cached(str(text), drop_stopwords)


@lru_cache(maxsize=65536)
def _normalize_label_cached(text: str) -> str:
    return "_".join(_tokenize_cached(text, False))


def normalize_label(text: str) -> str:
    """Canonical single-string form of a schema label (tokens joined by ``_``)."""
    if not text:
        return ""
    return _normalize_label_cached(str(text))


def character_ngrams(text: str, n: int = 3, pad: bool = True) -> Tuple[str, ...]:
    """Return the character n-grams of ``text`` (lowercased, memoized).

    Parameters
    ----------
    text:
        Input string.
    n:
        The n-gram length (must be >= 1).
    pad:
        If ``True``, the string is padded with ``n - 1`` boundary markers
        (``#``) on each side, which gives extra weight to prefixes and
        suffixes — the convention used by most n-gram schema matchers.
    """
    if n < 1:
        raise ValueError("n-gram length must be >= 1")
    return _character_ngrams_cached(str(text), n, pad)


@lru_cache(maxsize=65536)
def _character_ngrams_cached(text: str, n: int, pad: bool) -> Tuple[str, ...]:
    normalized = text.lower()
    if pad and n > 1:
        padding = "#" * (n - 1)
        normalized = f"{padding}{normalized}{padding}"
    if len(normalized) < n:
        return (normalized,) if normalized else ()
    return tuple(normalized[i : i + n] for i in range(len(normalized) - n + 1))
