"""Character n-gram similarity.

One of the alternative keyword/label similarity metrics mentioned in the
paper (Section 2.2), and a component of the metadata matcher.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

from .tokenize import character_ngrams


@lru_cache(maxsize=65536)
def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice coefficient over character n-gram multisets, in ``[0, 1]``.

    The Dice coefficient ``2 |A ∩ B| / (|A| + |B|)`` over n-gram *multisets*
    is robust to repeated substrings and is the classic "trigram similarity"
    used by schema matchers.  Memoized — the matchers compare the same label
    pairs many times across strategies and trials.
    """
    grams_a = Counter(character_ngrams(a, n))
    grams_b = Counter(character_ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    shared = sum((grams_a & grams_b).values())
    total = sum(grams_a.values()) + sum(grams_b.values())
    return 2.0 * shared / total


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity over character n-gram *sets*, in ``[0, 1]``."""
    grams_a = set(character_ngrams(a, n))
    grams_b = set(character_ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)
