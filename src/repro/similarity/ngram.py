"""Character n-gram similarity.

One of the alternative keyword/label similarity metrics mentioned in the
paper (Section 2.2), and a component of the metadata matcher.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

from .tokenize import character_ngrams


@lru_cache(maxsize=16384)
def _ngram_profile(text: str, n: int) -> tuple:
    """Per-label n-gram multiset, precomputed once: ``(Counter, total)``."""
    grams = Counter(character_ngrams(text, n))
    return grams, sum(grams.values())


@lru_cache(maxsize=65536)
def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice coefficient over character n-gram multisets, in ``[0, 1]``.

    The Dice coefficient ``2 |A ∩ B| / (|A| + |B|)`` over n-gram *multisets*
    is robust to repeated substrings and is the classic "trigram similarity"
    used by schema matchers.  Memoized at two levels — per label pair, and
    per label for the n-gram counters themselves (the matchers compare the
    same labels against many partners across strategies and trials) — with
    the multiset intersection summed in place rather than materialized.
    """
    grams_a, total_a = _ngram_profile(a, n)
    grams_b, total_b = _ngram_profile(b, n)
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    if len(grams_b) < len(grams_a):
        grams_a, grams_b = grams_b, grams_a
    get = grams_b.get
    shared = sum(
        count if count <= (other := get(gram, 0)) else other
        for gram, count in grams_a.items()
    )
    return 2.0 * shared / (total_a + total_b)


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity over character n-gram *sets*, in ``[0, 1]``."""
    grams_a = set(character_ngrams(a, n))
    grams_b = set(character_ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)
