"""String and set similarity metrics used for keyword matching and schema matching.

Public API
----------
* :func:`tokenize`, :func:`token_set`, :func:`normalize_label`,
  :func:`character_ngrams` — tokenization helpers.
* :class:`TfIdfScorer` — tf-idf cosine similarity (the default keyword
  similarity metric of the paper).
* :func:`levenshtein_distance`, :func:`levenshtein_similarity`,
  :func:`jaro_winkler_similarity` — edit-distance family.
* :func:`ngram_similarity`, :func:`ngram_jaccard` — character n-gram family.
* :func:`jaccard`, :func:`containment`, :func:`max_containment`,
  :func:`token_jaccard`, :func:`overlap_count` — set-based measures.
"""

from .edit_distance import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from .jaccard import containment, jaccard, max_containment, overlap_count, token_jaccard
from .ngram import ngram_jaccard, ngram_similarity
from .tfidf import TfIdfScorer
from .tokenize import STOPWORDS, character_ngrams, normalize_label, token_set, tokenize

__all__ = [
    "STOPWORDS",
    "TfIdfScorer",
    "character_ngrams",
    "containment",
    "jaccard",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "max_containment",
    "ngram_jaccard",
    "ngram_similarity",
    "normalize_label",
    "overlap_count",
    "token_jaccard",
    "token_set",
    "tokenize",
]
