"""The metrics registry: counters, gauges and latency histograms.

One :class:`MetricsRegistry` per session holds every operational counter of
the serving stack — the re-homed ``SystemStats`` counters, the serving
lane's read/write totals, and the latency histograms the tracer feeds.  Two
exposition formats come straight off the registry:

* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` per family, one sample line per labeled child),
  the payload ``QServer.metrics()`` / ``QService.metrics()`` serve to a
  scraper;
* :meth:`MetricsRegistry.as_dict` — a flat JSON-friendly mapping for
  dashboards and tests.

Three instrument shapes:

* :class:`Counter` — a monotone total.  ``inc`` is lock-protected and
  returns the new value, so the serving layer can use one counter both as
  a metric and as an id allocator (``snapshot_id``).
* :class:`Gauge` — a point-in-time value: either set explicitly or backed
  by a zero-argument callback evaluated at scrape time.  Callbacks are how
  live state (queue depth, pending writes, snapshot age) and the scattered
  pre-registry counters (pushdown statistics, Steiner cache totals,
  posting syncs) surface without any hot-path bookkeeping: the owning
  object keeps its plain attribute, the registry reads it when asked.
* :class:`Histogram` — fixed exponential buckets (doubling widths), for
  request/stage latencies.  Observation is O(#buckets) worst case with no
  allocation.

A :class:`NullRegistry` with no-op instruments backs the benchmarked
"no observability compiled in" baseline (`benchmarks/obs_bench.py`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 0.5 ms doubling up to ~16 s, +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.0005 * (2 ** i) for i in range(16))

LabelsArg = Optional[Dict[str, str]]
_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: LabelsArg) -> _LabelsKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _render_labels(key: _LabelsKey, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(key)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in items)
    return "{" + inner + "}"


def _sample_name(name: str, key: _LabelsKey) -> str:
    return name + _render_labels(key)


class Counter:
    """A monotone total.  ``inc`` returns the new value (atomic)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: _LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: explicit (``set``) or callback-backed."""

    __slots__ = ("name", "labels", "fn", "_value")

    def __init__(
        self,
        name: str,
        labels: _LabelsKey = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                # A scrape must never take a serving lane down with it: a
                # callback racing a shutdown reports 0 rather than raising.
                return 0.0
        return self._value


class Histogram:
    """Latency totals in fixed exponential buckets (cumulative on export)."""

    __slots__ = ("name", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: _LabelsKey = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts incl. +Inf, sum, count) under the lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count


class MetricsRegistry:
    """Get-or-create registry of all instruments, with exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (name, labels key) -> instrument; insertion-ordered so exposition
        # is stable across scrapes.
        self._instruments: "Dict[Tuple[str, _LabelsKey], object]" = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create; idempotent per (name, labels))
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", labels: LabelsArg = None) -> Counter:
        return self._get(name, help, labels, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: LabelsArg = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        gauge = self._get(name, help, labels, Gauge)
        if fn is not None:
            # Re-registering a callback rebinds it (a second QServer over
            # the same service takes over the serving gauges).
            gauge.fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelsArg = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1], buckets=buckets)
                self._instruments[key] = instrument
                if help:
                    self._help.setdefault(name, help)
            if not isinstance(instrument, Histogram):
                raise TypeError(f"metric {name!r} is not a histogram")
            return instrument

    def _get(self, name: str, help: str, labels: LabelsArg, cls):
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1])
                self._instruments[key] = instrument
                if help:
                    self._help.setdefault(name, help)
            if not isinstance(instrument, cls):
                raise TypeError(f"metric {name!r} is not a {cls.__name__.lower()}")
            return instrument

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, labels: LabelsArg = None) -> float:
        """Current value of a counter/gauge (0 when never registered).

        The accessor ``SystemStats`` is assembled from: a stat that has not
        moved yet reads 0, exactly like the pre-registry plain attribute.
        """
        with self._lock:
            instrument = self._instruments.get((name, _labels_key(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return 0
        return instrument.value

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly exposition: sample name -> value.

        Histograms expand to ``{"count", "sum", "buckets": {le: n}}``
        (cumulative counts, like the text format).
        """
        with self._lock:
            instruments = list(self._instruments.items())
        out: Dict[str, object] = {}
        for (name, key), instrument in instruments:
            sample = _sample_name(name, key)
            if isinstance(instrument, Histogram):
                counts, total, count = instrument.snapshot()
                cumulative: Dict[str, int] = {}
                running = 0
                for bound, n in zip(instrument.buckets, counts):
                    running += n
                    cumulative[repr(bound)] = running
                cumulative["+Inf"] = running + counts[-1]
                out[sample] = {"count": count, "sum": total, "buckets": cumulative}
            else:
                out[sample] = instrument.value
        return out

    def prometheus_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            instruments = list(self._instruments.items())
            help_text = dict(self._help)
        families: "Dict[str, List[Tuple[_LabelsKey, object]]]" = {}
        kinds: Dict[str, str] = {}
        for (name, key), instrument in instruments:
            families.setdefault(name, []).append((key, instrument))
            kinds[name] = (
                "counter"
                if isinstance(instrument, Counter)
                else "histogram"
                if isinstance(instrument, Histogram)
                else "gauge"
            )
        lines: List[str] = []
        for name, children in families.items():
            if name in help_text:
                lines.append(f"# HELP {name} {help_text[name]}")
            lines.append(f"# TYPE {name} {kinds[name]}")
            for key, instrument in children:
                if isinstance(instrument, Histogram):
                    counts, total, count = instrument.snapshot()
                    running = 0
                    for bound, n in zip(instrument.buckets, counts):
                        running += n
                        label = _render_labels(key, ("le", repr(bound)))
                        lines.append(f"{name}_bucket{label} {running}")
                    label = _render_labels(key, ("le", "+Inf"))
                    lines.append(f"{name}_bucket{label} {running + counts[-1]}")
                    lines.append(f"{name}_sum{_render_labels(key)} {total}")
                    lines.append(f"{name}_count{_render_labels(key)} {count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {instrument.value}")
        return "\n".join(lines) + "\n"


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> int:
        return 0

    value = 0


class _NullGauge:
    __slots__ = ("fn",)

    def __init__(self) -> None:
        self.fn = None

    def set(self, value: float) -> None:
        pass

    value = 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — the no-observability baseline.

    Every accessor returns a shared no-op instrument, so code written
    against the real registry runs unchanged with zero bookkeeping.  Used
    by ``benchmarks/obs_bench.py`` to price the disabled-mode overhead
    against a true do-nothing floor.
    """

    def __init__(self) -> None:  # no locks, no storage
        pass

    def counter(self, name: str, help: str = "", labels: LabelsArg = None):
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", labels: LabelsArg = None, fn=None):
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "", labels: LabelsArg = None, buckets=None):
        return _NULL_HISTOGRAM

    def value(self, name: str, labels: LabelsArg = None) -> float:
        return 0

    def as_dict(self) -> Dict[str, object]:
        return {}

    def prometheus_text(self) -> str:
        return ""
