"""repro.obs — tracing, metrics and explain for the serving stack.

One :class:`Observability` object per session bundles the four pieces the
README "Observability" section documents:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  latency histograms with Prometheus-text and JSON exposition
  (``QServer.metrics()`` / ``QService.metrics()``).  The scattered
  pre-registry counters (``ExecutionContext`` pushdown statistics, Steiner
  cache totals, posting builds/syncs, retry/degraded counts) are re-homed
  here as callback gauges, and ``SystemStats`` is assembled as a view over
  the registry.
* :class:`~repro.obs.tracing.Tracer` — the span API threaded through the
  read lane (snapshot acquire → materialize → solve → execute / windowed
  pushdown → paginate) and the writer lane (queue wait → apply →
  prepare_views → publish → autosave).  Disabled tracing is a zero-alloc
  no-op (:data:`~repro.obs.tracing.NOOP_TRACE`).
* :class:`~repro.obs.explain.DecisionLog` — every ranked read's serving
  path and, on fallback from the windowed pushdown, the concrete
  ineligibility reason.
* :class:`~repro.obs.explain.SlowQueryLog` — reads slower than
  ``ServiceConfig.slow_query_ms``, span tree included.

``Observability.from_config`` builds the session's real instance;
``Observability.noop`` builds the do-nothing twin the overhead benchmark
(`benchmarks/obs_bench.py`) prices the disabled mode against.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .explain import DecisionLog, DecisionRecord, SlowQueryLog, SlowQueryRecord
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import (
    NOOP_TRACE,
    ReadTrace,
    Span,
    Trace,
    Tracer,
    active_trace,
    derive_path,
    well_nested,
)

#: Trace annotation keys copied onto decision records.
_TALLY_KEYS = (
    "queries_pushdown",
    "queries_python",
    "queries_cached",
    "windowed_queries",
)


class Observability:
    """The session-wide observability bundle (registry + tracer + logs)."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        slow_query_s: float = 0.25,
        slow_query_log_size: int = 64,
        decision_log_size: int = 256,
    ) -> None:
        self.enabled = enabled
        self.clock = clock if clock is not None else time.perf_counter
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(enabled=enabled, clock=self.clock)
        self.decisions = DecisionLog(decision_log_size)
        self.slow_log = SlowQueryLog(slow_query_log_size, threshold_s=slow_query_s)
        reg = self.registry
        # The serving-lane instruments live on the bundle so the hot path
        # pays one attribute read, not a registry lookup.
        self._m_reads = reg.counter("q_reads_total", "Ranked reads served")
        self._m_reads_degraded = reg.counter(
            "q_reads_degraded_total", "Deadline-truncated reads"
        )
        self._m_read_seconds = reg.histogram(
            "q_read_seconds", "End-to-end ranked read latency"
        )
        self._m_write_apply_seconds = reg.histogram(
            "q_write_apply_seconds", "Writer-lane apply latency (incl. retries)"
        )
        self._m_write_queue_wait_seconds = reg.histogram(
            "q_write_queue_wait_seconds", "Time a write spent queued"
        )
        self._m_slow = reg.counter(
            "q_slow_queries_total", "Reads that crossed the slow-query threshold"
        )
        self._path_counters: Dict[str, Counter] = {}
        self._stage_histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "Observability":
        """The bundle a :class:`~repro.api.service.QService` session owns."""
        return cls(
            enabled=bool(getattr(config, "observability", True)),
            slow_query_s=float(getattr(config, "slow_query_ms", 250.0)) / 1000.0,
            slow_query_log_size=int(getattr(config, "slow_query_log_size", 64)),
            decision_log_size=int(getattr(config, "decision_log_size", 256)),
        )

    @classmethod
    def noop(cls) -> "Observability":
        """A bundle that records nothing — the benchmark's no-obs floor."""
        return cls(enabled=False, registry=NullRegistry())

    # ------------------------------------------------------------------
    # Lane completion hooks
    # ------------------------------------------------------------------
    def finish_read(
        self,
        trace,
        view_id: str,
        view_name: str,
        tenant: Optional[str],
        snapshot_id: Optional[int] = None,
        degraded: bool = False,
    ) -> Optional[ReadTrace]:
        """Account one finished ranked read; returns its :class:`ReadTrace`.

        Counters move in every mode; the trace-derived work (stage
        histograms, decision record, slow-query capture) only runs when the
        trace is real.  Returns ``None`` when tracing is disabled — the
        value ``ReadResult.trace`` carries.
        """
        self._m_reads.inc()
        if degraded:
            self._m_reads_degraded.inc()
        if not getattr(trace, "enabled", False):
            return None
        path, reason = derive_path(trace.annotations)
        self._path_counter(path).inc()
        duration = trace.root.duration
        self._m_read_seconds.observe(duration)
        for stage, seconds in _stage_totals(trace.root).items():
            self._stage_histogram(stage).observe(seconds)
        read_trace = ReadTrace(root=trace.root, path=path, fallback_reason=reason)
        decision = DecisionRecord(
            view_id=view_id,
            view_name=view_name,
            tenant=tenant,
            snapshot_id=snapshot_id,
            path=path,
            fallback_reason=reason,
            duration_s=duration,
            degraded=degraded,
            tallies={
                key: int(trace.annotations[key])
                for key in _TALLY_KEYS
                if key in trace.annotations
            },
        )
        self.decisions.append(decision)
        if self.slow_log.offer(decision, read_trace):
            self._m_slow.inc()
        return read_trace

    def finish_write(self, trace, kind: str) -> None:
        """Account one finished writer-lane op (histograms only)."""
        if not getattr(trace, "enabled", False):
            return
        apply_s = 0.0
        queue_wait_s = 0.0
        for child in trace.root.children:
            if child.name == "apply":
                apply_s += child.duration
            elif child.name == "queue_wait":
                queue_wait_s += child.duration
        self._m_write_apply_seconds.observe(apply_s)
        self._m_write_queue_wait_seconds.observe(queue_wait_s)

    # ------------------------------------------------------------------
    # Labeled-instrument caches
    # ------------------------------------------------------------------
    def _path_counter(self, path: str) -> Counter:
        counter = self._path_counters.get(path)
        if counter is None:
            counter = self.registry.counter(
                "q_read_path_total",
                "Ranked reads by serving path",
                labels={"path": path},
            )
            self._path_counters[path] = counter
        return counter

    def _stage_histogram(self, stage: str) -> Histogram:
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            histogram = self.registry.histogram(
                "q_read_stage_seconds",
                "Per-stage ranked read latency",
                labels={"stage": stage},
            )
            self._stage_histograms[stage] = histogram
        return histogram


def _stage_totals(root: Span) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for span in root.walk():
        if span is root:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return totals


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "DecisionLog",
    "DecisionRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACE",
    "NullRegistry",
    "Observability",
    "ReadTrace",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "Trace",
    "Tracer",
    "active_trace",
    "derive_path",
    "well_nested",
]
