"""Lightweight request tracing: span trees with an injectable clock.

The span API is built for a hot serving path that is usually *not* being
traced:

* When tracing is disabled, :meth:`Tracer.trace` returns the process-wide
  :data:`NOOP_TRACE` singleton whose every method is a no-op — entering it
  activates nothing and allocates nothing.
* Inner layers (the ranked view, the executor, the snapshot materializer,
  the service's autosave hook) never take a trace parameter.  They call
  :func:`active_trace`, which reads a ``threading.local`` slot the lane
  entry points (:meth:`QServer._read`, the writer loop,
  :meth:`QService.answers_page`) populate; with no active trace it returns
  :data:`NOOP_TRACE`, so the instrumentation costs one thread-local read.

A :class:`Trace` owns one :class:`Span` tree plus a flat ``annotations``
dict the explain layer reads: the serving path (``"path"``), the concrete
pushdown fallback reason (``"fallback_reason"``) and per-query tallies
(``"queries_pushdown"`` etc.).  ``annotate_once`` has first-writer-wins
semantics so the *most fundamental* reason survives (a tenant-overlay
view's reason is not overwritten by a later batch-level one).

Clocks are injectable (``Tracer(clock=...)``) and default to
:func:`time.perf_counter`; tests drive a deterministic counting clock and
assert exact span nesting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

_ACTIVE = threading.local()


def active_trace() -> "Trace":
    """The trace activated on this thread, or the no-op singleton."""
    trace = getattr(_ACTIVE, "trace", None)
    return trace if trace is not None else NOOP_TRACE


class Span:
    """One timed operation; children are the operations it contained."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: float = start
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0, unit: str = "s") -> str:
        """The span tree as an indented text block (debugging / slow log)."""
        lines = [f"{'  ' * indent}{self.name}: {self.duration:.6f}{unit}"]
        for child in self.children:
            lines.append(child.render(indent + 1, unit=unit))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, children={len(self.children)})"


class _ActiveSpan:
    """Context manager opening one child span on a live trace."""

    __slots__ = ("_trace", "_name", "span")

    def __init__(self, trace: "Trace", name: str) -> None:
        self._trace = trace
        self._name = name
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        trace = self._trace
        span = Span(self._name, trace.clock())
        trace._stack[-1].children.append(span)
        trace._stack.append(span)
        self.span = span
        return span

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        span = self._trace._stack.pop()
        span.end = self._trace.clock()


class Trace:
    """One request's span tree + annotations.  Activates via ``with``."""

    __slots__ = ("root", "clock", "annotations", "_stack", "_prev")

    #: A real trace (the no-op twin overrides this).
    enabled = True

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.root = Span(name, clock())
        self.annotations: Dict[str, object] = {}
        self._stack: List[Span] = [self.root]
        self._prev: Optional[Trace] = None

    # -- activation ----------------------------------------------------
    def __enter__(self) -> "Trace":
        self._prev = getattr(_ACTIVE, "trace", None)
        _ACTIVE.trace = self
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.root.end = self.clock()
        _ACTIVE.trace = self._prev

    # -- span API ------------------------------------------------------
    def span(self, name: str) -> _ActiveSpan:
        """Open a child span of the innermost open span."""
        return _ActiveSpan(self, name)

    def record_span(self, name: str, start: float, end: float) -> None:
        """Attach an already-timed interval (e.g. writer queue wait)."""
        span = Span(name, start)
        span.end = end
        self._stack[-1].children.append(span)

    # -- annotations ---------------------------------------------------
    def annotate(self, key: str, value: object) -> None:
        self.annotations[key] = value

    def annotate_once(self, key: str, value: object) -> None:
        """Set ``key`` only if unset — the first (most fundamental) fact wins."""
        self.annotations.setdefault(key, value)

    def tally(self, key: str, amount: int = 1) -> None:
        """Increment an integer annotation (per-query path counters)."""
        self.annotations[key] = int(self.annotations.get(key, 0)) + amount


class _NoopSpanCtx:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpanCtx":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        pass


_NOOP_SPAN_CTX = _NoopSpanCtx()


class _NoopTrace:
    """Zero-allocation stand-in when tracing is disabled or inactive."""

    __slots__ = ()

    enabled = False
    annotations: Dict[str, object] = {}

    def __enter__(self) -> "_NoopTrace":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        pass

    def span(self, name: str) -> _NoopSpanCtx:
        return _NOOP_SPAN_CTX

    def record_span(self, name: str, start: float, end: float) -> None:
        pass

    def annotate(self, key: str, value: object) -> None:
        pass

    def annotate_once(self, key: str, value: object) -> None:
        pass

    def tally(self, key: str, amount: int = 1) -> None:
        pass


NOOP_TRACE = _NoopTrace()


class Tracer:
    """Creates traces — or hands out the no-op singleton when disabled."""

    __slots__ = ("enabled", "clock")

    def __init__(
        self, enabled: bool = True, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.enabled = enabled
        self.clock = clock

    def trace(self, name: str):
        if not self.enabled:
            return NOOP_TRACE
        return Trace(name, self.clock)


@dataclass(frozen=True)
class ReadTrace:
    """The timing breakdown a :class:`~repro.service.server.ReadResult` carries.

    ``path`` names which machinery served the ranked read —
    ``"windowed"`` (one windowed ranked-union SELECT), ``"posting-join"``
    (per-query whole-query SQL pushdown over the backend-resident tables),
    ``"python-union"`` (the Python join engine + ranked union), ``"mixed"``
    (queries split across pushdown and Python), ``"cached"`` (served from
    a pinned materialization or the per-signature answer cache) or
    ``"shared"`` (a concurrent reader materialized it).  On any fallback
    from the windowed path, ``fallback_reason`` is the concrete
    ineligibility ("backend has no SQL pushdown", "window pushdown
    disabled via REPRO_WINDOW_PUSHDOWN", "tenant overlay view…", …) —
    empty when the windowed path ran or was never applicable.
    """

    root: Span
    path: str
    fallback_reason: str = ""

    @property
    def duration(self) -> float:
        return self.root.duration

    def stages(self) -> Dict[str, float]:
        """Total duration per span name across the whole tree (seconds)."""
        totals: Dict[str, float] = {}
        for span in self.root.walk():
            if span is self.root:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def render(self) -> str:
        header = f"path={self.path}"
        if self.fallback_reason:
            header += f" (fallback: {self.fallback_reason})"
        return header + "\n" + self.root.render()


def well_nested(span: Span) -> bool:
    """Whether a span tree is temporally consistent (test helper).

    Every child interval must lie within its parent and siblings must be
    ordered without overlap — exactly what single-threaded span open/close
    on one trace guarantees.
    """
    cursor = span.start
    for child in span.children:
        if child.start < cursor or child.end > span.end or child.end < child.start:
            return False
        if not well_nested(child):
            return False
        cursor = child.end
    return span.end >= span.start


def derive_path(annotations: Dict[str, object]) -> Tuple[str, str]:
    """(path, fallback reason) from a finished trace's annotations.

    The windowed path and the snapshot layer's cached/shared shortcuts
    annotate ``"path"`` explicitly; otherwise the executor's per-query
    tallies decide between the whole-query pushdown ("posting-join"), the
    Python engine ("python-union"), a mix, or an all-cache replay.
    """
    reason = str(annotations.get("fallback_reason", ""))
    path = annotations.get("path")
    if path is None:
        pushed = int(annotations.get("queries_pushdown", 0))
        python = int(annotations.get("queries_python", 0))
        if pushed and python:
            path = "mixed"
        elif pushed:
            path = "posting-join"
        elif python:
            path = "python-union"
        else:
            path = "cached"
    return str(path), reason
