"""Explain and slow-query logs: why a read was served the way it was.

Every ranked read finishing under an enabled observability layer appends a
:class:`DecisionRecord` to the bounded :class:`DecisionLog`: which path
served it (windowed pushdown / posting-join pushdown / Python union /
cache) and — on any fallback from the windowed path — the concrete
ineligibility reason the engine recorded at the decision point, not a
reconstruction.  Reads slower than ``ServiceConfig.slow_query_ms``
additionally land in the :class:`SlowQueryLog` with their full span tree,
so "where did my latency go" is answerable after the fact without re-running
the query.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from .tracing import ReadTrace


@dataclass(frozen=True)
class DecisionRecord:
    """One ranked read's serving decision."""

    view_id: str
    view_name: str
    tenant: Optional[str]
    snapshot_id: Optional[int]
    #: ``windowed`` / ``posting-join`` / ``python-union`` / ``mixed`` /
    #: ``cached`` / ``shared`` — see :class:`~repro.obs.tracing.ReadTrace`.
    path: str
    #: Concrete ineligibility on fallback from the windowed pushdown;
    #: empty when the windowed path served the read.
    fallback_reason: str = ""
    duration_s: float = 0.0
    degraded: bool = False
    #: Per-query tallies copied off the trace (``queries_pushdown``,
    #: ``queries_python``, ``queries_cached``, ``windowed_queries``).
    tallies: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        line = (
            f"view={self.view_name!r} tenant={self.tenant} path={self.path} "
            f"duration={self.duration_s:.6f}s"
        )
        if self.fallback_reason:
            line += f" fallback_reason={self.fallback_reason!r}"
        if self.degraded:
            line += " degraded"
        return line


@dataclass(frozen=True)
class SlowQueryRecord:
    """A slow read: its decision plus the full span tree."""

    decision: DecisionRecord
    trace: ReadTrace

    def render(self) -> str:
        return self.decision.render() + "\n" + self.trace.render()


class DecisionLog:
    """Bounded ring of the most recent serving decisions."""

    def __init__(self, maxlen: int = 256) -> None:
        self._lock = threading.Lock()
        self._records: Deque[DecisionRecord] = deque(maxlen=max(int(maxlen), 1))

    def append(self, record: DecisionRecord) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[DecisionRecord]:
        with self._lock:
            return list(self._records)

    def last(self) -> Optional[DecisionRecord]:
        with self._lock:
            return self._records[-1] if self._records else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class SlowQueryLog:
    """Bounded ring of reads that exceeded the slow-query threshold."""

    def __init__(self, maxlen: int = 64, threshold_s: float = 0.25) -> None:
        self._lock = threading.Lock()
        self._records: Deque[SlowQueryRecord] = deque(maxlen=max(int(maxlen), 1))
        self.threshold_s = threshold_s

    def offer(self, decision: DecisionRecord, trace: ReadTrace) -> bool:
        """Record the read iff it crossed the threshold; returns whether."""
        if trace.duration < self.threshold_s:
            return False
        with self._lock:
            self._records.append(SlowQueryRecord(decision=decision, trace=trace))
        return True

    def records(self) -> List[SlowQueryRecord]:
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
