"""repro — reproduction of "Automatically Incorporating New Sources in
Keyword Search-Based Data Integration" (Talukdar, Ives, Pereira; SIGMOD 2010).

The package implements the Q system end to end:

* :mod:`repro.storage` — pluggable relation storage behind the
  :class:`~repro.storage.base.StorageBackend` protocol: in-memory rows
  (default) or per-catalog SQLite with bulk ingest, real indexes and SQL
  pushdown.
* :mod:`repro.datastore` — relational substrate (schemas, tables, catalogs,
  indexes, conjunctive query execution with provenance).
* :mod:`repro.engine` — planned, indexed query execution: compiled
  predicates, cardinality-ordered hash joins, shared scan/join-index caches.
* :mod:`repro.similarity` — keyword / label similarity metrics.
* :mod:`repro.graph` — search graph, query graph, feature-based edge costs.
* :mod:`repro.steiner` — exact and approximate top-k Steiner trees.
* :mod:`repro.matching` — schema matchers: metadata (COMA++ stand-in), MAD
  label propagation, value overlap, and ensembles.
* :mod:`repro.profiling` — the registration-side fast path: persistent
  per-attribute profiles, posting-list candidate generation (blocking) and
  shared pair memos behind the :class:`~repro.profiling.CatalogProfileIndex`.
* :mod:`repro.alignment` — EXHAUSTIVE / VIEWBASED / PREFERENTIAL aligners and
  the new-source registration service.
* :mod:`repro.learning` — feedback generalization and MIRA-based learning of
  edge costs.
* :mod:`repro.obs` — observability: the metrics registry (Prometheus/JSON
  exposition), request tracing with per-stage spans, and the per-read
  explain/slow-query logs.
* :mod:`repro.api` — **the supported public surface**: the
  :class:`~repro.api.service.QService` session with typed request/response
  objects, lazy pull-based views and streaming k-best answers.
* :mod:`repro.core` — ranked views, query generation, evaluation metrics and
  the deprecated :class:`~repro.core.qsystem.QSystem` facade (a shim over
  :class:`~repro.api.service.QService`).
* :mod:`repro.datasets` — the InterPro–GO-like, GBCO-like and synthetic
  datasets used by the experiment harnesses in ``benchmarks/``.

Quickstart
----------
>>> from repro.api import QService, QueryRequest
>>> from repro.datasets import build_interpro_go
>>> dataset = build_interpro_go()
>>> service = QService(sources=dataset.catalog.sources())
>>> service.bootstrap_alignments(top_y=2)       # doctest: +SKIP
>>> pages = service.answers(QueryRequest(keywords=("membrane", "publication")))
>>> next(pages).answers[:3]                     # doctest: +SKIP
"""

from . import api
from .api.service import QService
from .api.types import ServiceConfig
from .core.qsystem import QSystem, QSystemConfig
from .core.view import RankedView
from .datastore.database import Catalog, DataSource
from .exceptions import SnapshotError
from .graph.search_graph import GraphConfig, SearchGraph
from .obs import MetricsRegistry, Observability, ReadTrace, Tracer
from .storage import MemoryBackend, SqliteBackend, StorageBackend, create_backend

__version__ = "2.3.0"

__all__ = [
    "Catalog",
    "DataSource",
    "GraphConfig",
    "MemoryBackend",
    "MetricsRegistry",
    "Observability",
    "QService",
    "QSystem",
    "QSystemConfig",
    "RankedView",
    "ReadTrace",
    "SearchGraph",
    "ServiceConfig",
    "SnapshotError",
    "SqliteBackend",
    "StorageBackend",
    "Tracer",
    "api",
    "create_backend",
    "__version__",
]
