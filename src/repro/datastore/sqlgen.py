"""SQL text generation for conjunctive queries.

The paper translates each Steiner tree into a conjunctive SQL statement and
unions the statements with a disjoint ("outer") union (Section 2.2).  Our
executor evaluates the queries natively, but we also render equivalent SQL
text: it documents what is being run, is useful in the examples, and lets a
downstream user push the generated queries to a real RDBMS.

Two renderings exist:

* the **literal** rendering (:func:`query_to_sql` / :func:`union_to_sql`) —
  human-readable SQL with values inlined, kept byte-stable for docs and
  examples;
* the **parameterized** rendering (:func:`query_to_parameterized_sql` /
  :func:`union_to_parameterized_sql`) — the same statement shape with ``?``
  placeholders and a parameter tuple, so executing generated SQL never
  string-interpolates user values.

Selection conditions additionally come in two dialects (see
:func:`selection_condition`): ``"portable"`` renders standard ``=`` /
``LIKE`` predicates for external RDBMSs, while ``"exact"`` renders calls to
the library's own matcher function (``repro_match``) as registered with the
SQLite backend — the dialect the storage pushdown uses to guarantee
answer-level parity with the Python engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import QueryError
from .query import ConjunctiveQuery, SelectionPredicate
from .types import canonicalize


@dataclass(frozen=True)
class ParameterizedSQL:
    """One SQL statement plus its positional parameters."""

    sql: str
    params: Tuple[object, ...]


def _quote_identifier(name: str) -> str:
    """Quote an identifier, replacing the source separator with ``_``."""
    return '"' + name.replace('"', '""') + '"'


#: Public alias — :mod:`repro.storage` (the SQLite backend and the pushdown
#: compiler) imports this so the quoting rule has a single home.
quote_identifier = _quote_identifier


@dataclass(frozen=True)
class PushdownDialect:
    """How one backend spells the *exact*-dialect SQL the pushdown emits.

    The exact dialect guarantees answer parity by calling the library's own
    canonicalize / match functions *inside* the database; which names those
    functions are registered under — and which SQL features the server
    offers — is a property of the backend.  Bundling them here lets the
    pushdown compilers (:mod:`repro.storage.pushdown`,
    :mod:`repro.storage.windowed`) render for any backend that registers
    the functions, instead of hard-coding the SQLite spelling.
    """

    #: Dialect identifier (matches the backend's ``kind``).
    name: str = "sqlite"
    #: Name of the registered canonicalizer UDF (one text argument).
    canon_function: str = "repro_canon"
    #: Name of the registered matcher UDF (``mode, needle, value`` → 0/1).
    match_function: str = "repro_match"
    #: Whether the server evaluates ``ROW_NUMBER()``/``RANK()`` windows —
    #: the prerequisite of the windowed ranked-union pushdown.
    supports_window_functions: bool = True

    def canon(self, column_sql: str) -> str:
        """The canonical form of a column expression, as SQL."""
        return f"{self.canon_function}({column_sql})"


#: The dialect of :class:`~repro.storage.sqlite.SqliteBackend` (window
#: functions ship with SQLite ≥ 3.25) and the default everywhere a dialect
#: is not passed explicitly.
SQLITE_DIALECT = PushdownDialect()


def exact_condition(
    mode: str,
    value: str,
    column_sql: str,
    params: List[object],
    functions: PushdownDialect = SQLITE_DIALECT,
) -> str:
    """One selection condition in the *exact* (backend-function) dialect.

    ``equals`` renders as ``repro_canon(column) = ?`` with the needle's
    canonical form as the parameter — semantically identical to
    :meth:`~repro.engine.predicates.CompiledPredicate.matches` (a null
    canonical needle matches nothing: ``x = NULL`` is never true), and
    shaped so SQLite can serve it from the ``repro_canon(column)``
    expression indexes the backend builds.  The other modes call the
    backend-registered matcher function ``repro_match``.  ``functions``
    scopes the spelling of both calls to the target backend's
    :class:`PushdownDialect`.
    """
    if mode == "equals":
        params.append(canonicalize(value))
        return f"{functions.canon(column_sql)} = ?"
    params.extend([mode, value])
    return f"{functions.match_function}(?, ?, {column_sql}) = 1"


def _quote_literal(value: str) -> str:
    """Render a string literal with single quotes escaped."""
    return "'" + str(value).replace("'", "''") + "'"


def _value_sql(value: object, params: Optional[List[object]]) -> str:
    """Render a value: inline literal, or a ``?`` placeholder collecting it."""
    if params is None:
        return _quote_literal(value)
    params.append(value)
    return "?"


def selection_condition(
    predicate: SelectionPredicate,
    column_sql: str,
    params: Optional[List[object]] = None,
    dialect: str = "portable",
    functions: PushdownDialect = SQLITE_DIALECT,
) -> str:
    """Render one selection predicate as a SQL condition.

    Parameters
    ----------
    predicate:
        The selection to render.
    column_sql:
        The (already quoted) SQL expression for the selected column.
    params:
        When given, values are collected here and ``?`` placeholders are
        emitted; when ``None``, values are inlined as escaped literals.
    dialect:
        ``"portable"`` — standard SQL (``=`` for equals, ``LIKE`` patterns
        for contains/keyword).  The keyword rendering is a documented
        approximation: token containment becomes conjoined substring LIKEs.
        ``"exact"`` — the backend-function dialect (see
        :func:`exact_condition`); byte-identical semantics to the Python
        engine's predicate evaluation.
    functions:
        The :class:`PushdownDialect` scoping the exact dialect's function
        names to the target backend (ignored by ``"portable"``).
    """
    if dialect == "exact":
        if params is None:
            raise QueryError("the exact dialect requires parameterized rendering")
        return exact_condition(
            predicate.mode, predicate.value, column_sql, params, functions
        )
    if dialect != "portable":
        raise QueryError(f"unknown SQL dialect {dialect!r}")
    if predicate.mode == "equals":
        return f"{column_sql} = {_value_sql(predicate.value, params)}"
    # ``contains`` and ``keyword`` both render as LIKE patterns; keyword mode
    # produces one LIKE per token, conjoined.
    if predicate.mode == "contains":
        return f"{column_sql} LIKE {_value_sql('%' + predicate.value + '%', params)}"
    tokens = predicate.value.split()
    clauses = [
        f"{column_sql} LIKE {_value_sql('%' + token + '%', params)}" for token in tokens
    ]
    return "(" + " AND ".join(clauses) + ")" if clauses else "1 = 1"


def _render_selection(predicate: SelectionPredicate, params: Optional[List[object]] = None) -> str:
    column = f"{_quote_identifier(predicate.alias)}.{_quote_identifier(predicate.attribute)}"
    return selection_condition(predicate, column, params)


def _render_query(
    query: ConjunctiveQuery, include_cost: bool, params: Optional[List[object]]
) -> str:
    query.validate()
    select_items: List[str] = []
    if query.outputs:
        for column in query.outputs:
            expr = f"{_quote_identifier(column.alias)}.{_quote_identifier(column.attribute)}"
            select_items.append(f"{expr} AS {_quote_identifier(column.label)}")
    else:
        select_items.append("*")
    if include_cost:
        select_items.append(f"{query.cost:.6f} AS {_quote_identifier('_cost')}")

    from_items = [
        f"{_quote_identifier(atom.relation)} AS {_quote_identifier(atom.alias)}"
        for atom in query.atoms
    ]

    where_clauses: List[str] = []
    for join in query.joins:
        left = f"{_quote_identifier(join.left_alias)}.{_quote_identifier(join.left_attribute)}"
        right = f"{_quote_identifier(join.right_alias)}.{_quote_identifier(join.right_attribute)}"
        where_clauses.append(f"{left} = {right}")
    for selection in query.selections:
        where_clauses.append(_render_selection(selection, params))

    sql = "SELECT " + ",\n       ".join(select_items)
    sql += "\nFROM " + ",\n     ".join(from_items)
    if where_clauses:
        sql += "\nWHERE " + "\n  AND ".join(where_clauses)
    return sql


def query_to_sql(query: ConjunctiveQuery, include_cost: bool = True) -> str:
    """Render one conjunctive query as a SQL ``SELECT`` statement.

    Parameters
    ----------
    query:
        The query to render.
    include_cost:
        If ``True``, the query's cost is emitted as a constant ``_cost``
        column, mirroring the per-branch cost term ``e`` of the paper.
    """
    return _render_query(query, include_cost, params=None)


def query_to_parameterized_sql(
    query: ConjunctiveQuery, include_cost: bool = True
) -> ParameterizedSQL:
    """Like :func:`query_to_sql`, but with ``?`` placeholders for values.

    The statement shape is identical to the literal rendering; only the
    selection needles move into the parameter tuple (query costs are
    engine-computed constants, not user input, and stay inline).
    """
    params: List[object] = []
    sql = _render_query(query, include_cost, params=params)
    return ParameterizedSQL(sql, tuple(params))


def _render_union(
    queries: Sequence[ConjunctiveQuery],
    unified_columns: Optional[Sequence[str]],
    column_mappings: Optional[Sequence[Dict[str, str]]],
    params: Optional[List[object]],
) -> str:
    ordered = sorted(range(len(queries)), key=lambda i: queries[i].cost)
    if unified_columns is None:
        seen: List[str] = []
        for index in ordered:
            mapping = column_mappings[index] if column_mappings else {}
            for label in queries[index].output_labels():
                unified = mapping.get(label, label)
                if unified not in seen:
                    seen.append(unified)
        unified_columns = seen

    branches: List[str] = []
    for index in ordered:
        query = queries[index]
        mapping = column_mappings[index] if column_mappings else {}
        label_to_column = {}
        for column in query.outputs:
            unified = mapping.get(column.label, column.label)
            label_to_column[unified] = (
                f"{_quote_identifier(column.alias)}.{_quote_identifier(column.attribute)}"
            )
        select_items = []
        for unified in unified_columns:
            expr = label_to_column.get(unified, "NULL")
            select_items.append(f"{expr} AS {_quote_identifier(unified)}")
        select_items.append(f"{query.cost:.6f} AS {_quote_identifier('_cost')}")

        branch_sql = "SELECT " + ",\n       ".join(select_items)
        branch_sql += "\nFROM " + ",\n     ".join(
            f"{_quote_identifier(atom.relation)} AS {_quote_identifier(atom.alias)}"
            for atom in query.atoms
        )
        where_clauses = []
        for join in query.joins:
            left = f"{_quote_identifier(join.left_alias)}.{_quote_identifier(join.left_attribute)}"
            right = f"{_quote_identifier(join.right_alias)}.{_quote_identifier(join.right_attribute)}"
            where_clauses.append(f"{left} = {right}")
        for selection in query.selections:
            where_clauses.append(_render_selection(selection, params))
        if where_clauses:
            branch_sql += "\nWHERE " + "\n  AND ".join(where_clauses)
        branches.append(branch_sql)

    union_sql = "\nUNION ALL\n".join(branches)
    return union_sql + f"\nORDER BY {_quote_identifier('_cost')} ASC"


def union_to_sql(
    queries: Sequence[ConjunctiveQuery],
    unified_columns: Optional[Sequence[str]] = None,
    column_mappings: Optional[Sequence[Dict[str, str]]] = None,
) -> str:
    """Render a ranked disjoint union of queries as ``UNION ALL`` SQL.

    Every branch projects the full unified column list, emitting ``NULL``
    for the columns it does not populate, then the union is ordered by the
    per-branch cost column — matching the multiway disjoint union described
    in Section 2.2.

    Parameters
    ----------
    queries:
        The branch queries, in any order (the output is ordered by cost).
    unified_columns:
        The unified output schema.  If omitted, the union of all branch
        output labels is used, in first-seen order.
    column_mappings:
        Optional per-branch mapping from the branch's own output labels to
        unified labels (as produced by the executor's column alignment).
    """
    return _render_union(queries, unified_columns, column_mappings, params=None)


def union_to_parameterized_sql(
    queries: Sequence[ConjunctiveQuery],
    unified_columns: Optional[Sequence[str]] = None,
    column_mappings: Optional[Sequence[Dict[str, str]]] = None,
) -> ParameterizedSQL:
    """Like :func:`union_to_sql`, with ``?`` placeholders for values.

    Parameters are collected branch by branch in ascending-cost order —
    the same order the branches appear in the rendered statement.
    """
    params: List[object] = []
    sql = _render_union(queries, unified_columns, column_mappings, params=params)
    return ParameterizedSQL(sql, tuple(params))
