"""SQL text generation for conjunctive queries.

The paper translates each Steiner tree into a conjunctive SQL statement and
unions the statements with a disjoint ("outer") union (Section 2.2).  Our
executor evaluates the queries natively, but we also render equivalent SQL
text: it documents what is being run, is useful in the examples, and lets a
downstream user push the generated queries to a real RDBMS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .query import ConjunctiveQuery, SelectionPredicate


def _quote_identifier(name: str) -> str:
    """Quote an identifier, replacing the source separator with ``_``."""
    return '"' + name.replace('"', '""') + '"'


def _quote_literal(value: str) -> str:
    """Render a string literal with single quotes escaped."""
    return "'" + str(value).replace("'", "''") + "'"


def _render_selection(predicate: SelectionPredicate) -> str:
    column = f"{_quote_identifier(predicate.alias)}.{_quote_identifier(predicate.attribute)}"
    if predicate.mode == "equals":
        return f"{column} = {_quote_literal(predicate.value)}"
    # ``contains`` and ``keyword`` both render as LIKE patterns; keyword mode
    # produces one LIKE per token, conjoined.
    if predicate.mode == "contains":
        return f"{column} LIKE {_quote_literal('%' + predicate.value + '%')}"
    tokens = predicate.value.split()
    clauses = [f"{column} LIKE {_quote_literal('%' + token + '%')}" for token in tokens]
    return "(" + " AND ".join(clauses) + ")" if clauses else "1 = 1"


def query_to_sql(query: ConjunctiveQuery, include_cost: bool = True) -> str:
    """Render one conjunctive query as a SQL ``SELECT`` statement.

    Parameters
    ----------
    query:
        The query to render.
    include_cost:
        If ``True``, the query's cost is emitted as a constant ``_cost``
        column, mirroring the per-branch cost term ``e`` of the paper.
    """
    query.validate()
    select_items: List[str] = []
    if query.outputs:
        for column in query.outputs:
            expr = f"{_quote_identifier(column.alias)}.{_quote_identifier(column.attribute)}"
            select_items.append(f"{expr} AS {_quote_identifier(column.label)}")
    else:
        select_items.append("*")
    if include_cost:
        select_items.append(f"{query.cost:.6f} AS {_quote_identifier('_cost')}")

    from_items = [
        f"{_quote_identifier(atom.relation)} AS {_quote_identifier(atom.alias)}"
        for atom in query.atoms
    ]

    where_clauses: List[str] = []
    for join in query.joins:
        left = f"{_quote_identifier(join.left_alias)}.{_quote_identifier(join.left_attribute)}"
        right = f"{_quote_identifier(join.right_alias)}.{_quote_identifier(join.right_attribute)}"
        where_clauses.append(f"{left} = {right}")
    for selection in query.selections:
        where_clauses.append(_render_selection(selection))

    sql = "SELECT " + ",\n       ".join(select_items)
    sql += "\nFROM " + ",\n     ".join(from_items)
    if where_clauses:
        sql += "\nWHERE " + "\n  AND ".join(where_clauses)
    return sql


def union_to_sql(
    queries: Sequence[ConjunctiveQuery],
    unified_columns: Optional[Sequence[str]] = None,
    column_mappings: Optional[Sequence[Dict[str, str]]] = None,
) -> str:
    """Render a ranked disjoint union of queries as ``UNION ALL`` SQL.

    Every branch projects the full unified column list, emitting ``NULL``
    for the columns it does not populate, then the union is ordered by the
    per-branch cost column — matching the multiway disjoint union described
    in Section 2.2.

    Parameters
    ----------
    queries:
        The branch queries, in any order (the output is ordered by cost).
    unified_columns:
        The unified output schema.  If omitted, the union of all branch
        output labels is used, in first-seen order.
    column_mappings:
        Optional per-branch mapping from the branch's own output labels to
        unified labels (as produced by the executor's column alignment).
    """
    ordered = sorted(range(len(queries)), key=lambda i: queries[i].cost)
    if unified_columns is None:
        seen: List[str] = []
        for index in ordered:
            mapping = column_mappings[index] if column_mappings else {}
            for label in queries[index].output_labels():
                unified = mapping.get(label, label)
                if unified not in seen:
                    seen.append(unified)
        unified_columns = seen

    branches: List[str] = []
    for index in ordered:
        query = queries[index]
        mapping = column_mappings[index] if column_mappings else {}
        label_to_column = {}
        for column in query.outputs:
            unified = mapping.get(column.label, column.label)
            label_to_column[unified] = (
                f"{_quote_identifier(column.alias)}.{_quote_identifier(column.attribute)}"
            )
        select_items = []
        for unified in unified_columns:
            expr = label_to_column.get(unified, "NULL")
            select_items.append(f"{expr} AS {_quote_identifier(unified)}")
        select_items.append(f"{query.cost:.6f} AS {_quote_identifier('_cost')}")

        branch_sql = "SELECT " + ",\n       ".join(select_items)
        branch_sql += "\nFROM " + ",\n     ".join(
            f"{_quote_identifier(atom.relation)} AS {_quote_identifier(atom.alias)}"
            for atom in query.atoms
        )
        where_clauses = []
        for join in query.joins:
            left = f"{_quote_identifier(join.left_alias)}.{_quote_identifier(join.left_attribute)}"
            right = f"{_quote_identifier(join.right_alias)}.{_quote_identifier(join.right_attribute)}"
            where_clauses.append(f"{left} = {right}")
        for selection in query.selections:
            where_clauses.append(_render_selection(selection))
        if where_clauses:
            branch_sql += "\nWHERE " + "\n  AND ".join(where_clauses)
        branches.append(branch_sql)

    union_sql = "\nUNION ALL\n".join(branches)
    return union_sql + f"\nORDER BY {_quote_identifier('_cost')} ASC"
