"""Loading and saving data sources as CSV / JSON-friendly structures.

The registration service of the Q system can be pointed at plain CSV files
(one per relation); this module implements that loading path, plus a simple
round-trippable dictionary serialization used by the synthetic dataset
generators and the test-suite fixtures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import DataError
from .database import Catalog, DataSource
from .schema import ForeignKey, RelationSchema, SourceSchema
from .table import Table

PathLike = Union[str, Path]


def load_relation_csv(
    path: PathLike,
    relation_name: Optional[str] = None,
    delimiter: str = ",",
) -> Tuple[RelationSchema, List[Dict[str, str]]]:
    """Load one CSV file into a relation schema plus its rows.

    The first row is treated as the header (attribute names).  All values
    are kept as strings; type inference happens lazily via the table's
    :meth:`~repro.datastore.table.Table.inferred_column_type`.
    """
    path = Path(path)
    relation_name = relation_name or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"CSV file {path} is empty") from None
        header = [column.strip() for column in header]
        schema = RelationSchema(relation_name, header)
        rows = []
        for line_number, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise DataError(
                    f"{path}:{line_number}: expected {len(header)} fields, got {len(record)}"
                )
            rows.append(dict(zip(header, record)))
    return schema, rows


def load_source_from_csv_dir(
    directory: PathLike,
    source_name: Optional[str] = None,
    foreign_keys: Optional[Iterable[Tuple[str, str, str, str]]] = None,
    delimiter: str = ",",
) -> DataSource:
    """Load every ``*.csv`` file under ``directory`` as one data source.

    Each CSV file becomes one relation named after the file stem.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"{directory} is not a directory")
    source_name = source_name or directory.name
    schema = SourceSchema(source_name)
    tables: Dict[str, List[Dict[str, str]]] = {}
    for csv_path in sorted(directory.glob("*.csv")):
        relation_schema, rows = load_relation_csv(csv_path, delimiter=delimiter)
        schema.add_relation(relation_schema)
        tables[relation_schema.name] = rows
    if not schema.relations:
        raise DataError(f"no CSV files found under {directory}")
    for fk in foreign_keys or ():
        schema.add_foreign_key(ForeignKey(*fk))
    source = DataSource(schema)
    for relation_name, rows in tables.items():
        source.table(relation_name).extend(rows)
    return source


def save_source_to_csv_dir(source: DataSource, directory: PathLike) -> List[Path]:
    """Write each relation of ``source`` as ``<directory>/<relation>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for table in source:
        path = directory / f"{table.schema.name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.attribute_names)
            for row in table:
                writer.writerow(["" if v is None else v for v in row.values])
        written.append(path)
    return written


def source_to_dict(source: DataSource) -> Dict[str, Any]:
    """Serialize a source (schema + data) to a JSON-compatible dictionary."""
    return {
        "name": source.name,
        "description": source.schema.description,
        "relations": {
            table.schema.name: {
                "attributes": list(table.schema.attribute_names),
                "primary_key": list(table.schema.primary_key),
                "rows": [list(row.values) for row in table],
            }
            for table in source
        },
        "foreign_keys": [list(fk.as_tuple()) for fk in source.schema.foreign_keys],
    }


def source_from_dict(payload: Mapping[str, Any]) -> DataSource:
    """Inverse of :func:`source_to_dict`."""
    schema = SourceSchema(payload["name"], description=payload.get("description", ""))
    rows_by_relation: Dict[str, Sequence[Sequence[Any]]] = {}
    for relation_name, spec in payload.get("relations", {}).items():
        schema.add_relation(
            RelationSchema(
                relation_name,
                spec["attributes"],
                primary_key=spec.get("primary_key") or None,
            )
        )
        rows_by_relation[relation_name] = spec.get("rows", [])
    for fk in payload.get("foreign_keys", ()):
        schema.add_foreign_key(ForeignKey(*fk))
    source = DataSource(schema)
    for relation_name, rows in rows_by_relation.items():
        source.table(relation_name).extend(rows)
    return source


def save_catalog_json(catalog: Catalog, path: PathLike) -> Path:
    """Serialize an entire catalog to a JSON file."""
    path = Path(path)
    payload = {"sources": [source_to_dict(source) for source in catalog]}
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_catalog_json(path: PathLike) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    catalog = Catalog()
    for source_payload in payload.get("sources", ()):
        catalog.add_source(source_from_dict(source_payload))
    return catalog
