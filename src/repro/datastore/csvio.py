"""Loading and saving data sources as CSV / JSON-friendly structures.

The registration service of the Q system can be pointed at plain CSV files
(one per relation); this module implements that loading path, plus a simple
round-trippable dictionary serialization used by the synthetic dataset
generators and the test-suite fixtures.

Loading is *streaming*: rows flow from the file into the storage backend in
bounded batches (:data:`DEFAULT_BATCH_SIZE` rows per backend ingest call),
so a CSV larger than RAM can be ingested into a disk-backed catalog without
ever materializing the whole file as a Python list.
"""

from __future__ import annotations

import csv
import itertools
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import DataError
from .database import Catalog, DataSource
from .schema import ForeignKey, RelationSchema, SourceSchema

PathLike = Union[str, Path]

#: Rows per backend ingest call when streaming a CSV file.
DEFAULT_BATCH_SIZE = 1000


def read_relation_header(
    path: PathLike, relation_name: Optional[str] = None, delimiter: str = ","
) -> RelationSchema:
    """Read only the header row of a CSV file into a relation schema."""
    path = Path(path)
    relation_name = relation_name or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"CSV file {path} is empty") from None
    header = [column.strip() for column in header]
    return RelationSchema(relation_name, header)


def iter_relation_rows(
    path: PathLike, delimiter: str = ","
) -> Iterator[Dict[str, str]]:
    """Lazily yield one ``{attribute: value}`` dict per CSV record.

    The header row is consumed for attribute names; records are validated
    against it as they stream.  All values are kept as strings; type
    inference happens lazily via the table's
    :meth:`~repro.datastore.table.Table.inferred_column_type`.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"CSV file {path} is empty") from None
        header = [column.strip() for column in header]
        for line_number, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise DataError(
                    f"{path}:{line_number}: expected {len(header)} fields, got {len(record)}"
                )
            yield dict(zip(header, record))


def load_relation_csv(
    path: PathLike,
    relation_name: Optional[str] = None,
    delimiter: str = ",",
) -> Tuple[RelationSchema, List[Dict[str, str]]]:
    """Load one CSV file into a relation schema plus its (materialized) rows.

    Convenience wrapper kept for small files and the test fixtures; bulk
    ingest paths should prefer :func:`iter_relation_rows` +
    :meth:`~repro.datastore.table.Table.extend`, which never materialize
    the file.
    """
    schema = read_relation_header(path, relation_name, delimiter)
    return schema, list(iter_relation_rows(path, delimiter))


def _batches(rows: Iterator[Dict[str, str]], size: int) -> Iterator[List[Dict[str, str]]]:
    while True:
        batch = list(itertools.islice(rows, size))
        if not batch:
            return
        yield batch


def load_source_from_csv_dir(
    directory: PathLike,
    source_name: Optional[str] = None,
    foreign_keys: Optional[Iterable[Tuple[str, str, str, str]]] = None,
    delimiter: str = ",",
    backend=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> DataSource:
    """Load every ``*.csv`` file under ``directory`` as one data source.

    Each CSV file becomes one relation named after the file stem.  Only the
    headers are read up front (to build the source schema); the data then
    streams file by file into the relation's storage backend in
    ``batch_size``-row ingest batches.

    Parameters
    ----------
    backend:
        Optional :class:`~repro.storage.base.StorageBackend` the relations
        are created on (e.g. a :class:`~repro.storage.sqlite.SqliteBackend`
        for datasets larger than RAM); defaults to per-table memory.
    batch_size:
        Rows per backend ingest call; bounds peak Python-side memory.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"{directory} is not a directory")
    if batch_size < 1:
        raise DataError(f"batch_size must be >= 1, got {batch_size}")
    source_name = source_name or directory.name
    schema = SourceSchema(source_name)
    csv_paths = sorted(directory.glob("*.csv"))
    for csv_path in csv_paths:
        schema.add_relation(read_relation_header(csv_path, delimiter=delimiter))
    if not schema.relations:
        raise DataError(f"no CSV files found under {directory}")
    for fk in foreign_keys or ():
        schema.add_foreign_key(ForeignKey(*fk))
    source = DataSource(schema, backend=backend)
    for csv_path in csv_paths:
        table = source.table(csv_path.stem)
        for batch in _batches(iter_relation_rows(csv_path, delimiter), batch_size):
            table.extend(batch)
    return source


def save_source_to_csv_dir(source: DataSource, directory: PathLike) -> List[Path]:
    """Write each relation of ``source`` as ``<directory>/<relation>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for table in source:
        path = directory / f"{table.schema.name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.attribute_names)
            for row in table.scan():
                writer.writerow(["" if v is None else v for v in row.values])
        written.append(path)
    return written


def source_to_dict(source: DataSource) -> Dict[str, Any]:
    """Serialize a source (schema + data) to a JSON-compatible dictionary."""
    return {
        "name": source.name,
        "description": source.schema.description,
        "relations": {
            table.schema.name: {
                "attributes": list(table.schema.attribute_names),
                "primary_key": list(table.schema.primary_key),
                "rows": [list(row.values) for row in table.scan()],
            }
            for table in source
        },
        "foreign_keys": [list(fk.as_tuple()) for fk in source.schema.foreign_keys],
    }


def source_from_dict(payload: Mapping[str, Any], backend=None) -> DataSource:
    """Inverse of :func:`source_to_dict`."""
    schema = SourceSchema(payload["name"], description=payload.get("description", ""))
    rows_by_relation: Dict[str, Sequence[Sequence[Any]]] = {}
    for relation_name, spec in payload.get("relations", {}).items():
        schema.add_relation(
            RelationSchema(
                relation_name,
                spec["attributes"],
                primary_key=spec.get("primary_key") or None,
            )
        )
        rows_by_relation[relation_name] = spec.get("rows", [])
    for fk in payload.get("foreign_keys", ()):
        schema.add_foreign_key(ForeignKey(*fk))
    source = DataSource(schema, backend=backend)
    for relation_name, rows in rows_by_relation.items():
        source.table(relation_name).extend(rows)
    return source


def save_catalog_json(catalog: Catalog, path: PathLike) -> Path:
    """Serialize an entire catalog to a JSON file."""
    path = Path(path)
    payload = {"sources": [source_to_dict(source) for source in catalog]}
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return path


def load_catalog_json(path: PathLike, backend=None) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    catalog = Catalog(backend=backend)
    for source_payload in payload.get("sources", ()):
        catalog.add_source(source_from_dict(source_payload))
    return catalog
