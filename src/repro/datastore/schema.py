"""Schema objects: attributes, relations, foreign keys and sources.

The search graph of the Q system (paper Section 2.1) is built from schema
metadata: relation names, attribute names, and key/foreign-key relationships.
This module defines the metadata layer; tuple storage lives in
:mod:`repro.datastore.table`.

Naming conventions
------------------
Relations are identified by a *qualified name* ``"<source>.<relation>"``
(e.g. ``"interpro.entry"``), and attributes by a *fully qualified name*
``"<source>.<relation>.<attribute>"``.  The helpers :func:`qualified_name`
and :func:`split_qualified` centralize this convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SchemaError, UnknownAttributeError
from .types import ValueType


def qualified_name(*parts: str) -> str:
    """Join name parts with ``"."`` into a qualified name."""
    return ".".join(parts)


def split_qualified(name: str) -> Tuple[str, ...]:
    """Split a qualified name into its dot-separated parts."""
    return tuple(name.split("."))


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation.

    Attributes
    ----------
    name:
        Attribute name local to its relation (e.g. ``"go_id"``).
    value_type:
        The inferred or declared :class:`~repro.datastore.types.ValueType`.
    description:
        Optional human-readable documentation (used as auxiliary metadata by
        the metadata matcher).
    """

    name: str
    value_type: ValueType = ValueType.STRING
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.value_type, self.description)


@dataclass(frozen=True)
class ForeignKey:
    """A key/foreign-key relationship between two relations.

    The relationship is directed from ``(source_relation, source_attribute)``
    to ``(target_relation, target_attribute)`` but is treated as an
    *undirected* join edge in the search graph, matching the paper's
    bidirectional foreign-key edges with default cost ``cd``.
    """

    source_relation: str
    source_attribute: str
    target_relation: str
    target_attribute: str

    def as_tuple(self) -> Tuple[str, str, str, str]:
        """Return the four components as a plain tuple."""
        return (
            self.source_relation,
            self.source_attribute,
            self.target_relation,
            self.target_attribute,
        )

    def reversed(self) -> "ForeignKey":
        """Return the same relationship with source and target swapped."""
        return ForeignKey(
            self.target_relation,
            self.target_attribute,
            self.source_relation,
            self.source_attribute,
        )


class RelationSchema:
    """Schema of a single relation: ordered attributes plus key metadata.

    Parameters
    ----------
    name:
        Relation name local to its source (e.g. ``"entry"``).
    attributes:
        Ordered sequence of :class:`Attribute` (or plain attribute names,
        which are promoted to string-typed attributes).
    source:
        Name of the data source that owns the relation; may be set later via
        :meth:`bind_source`.
    primary_key:
        Optional sequence of attribute names forming the primary key.
    description:
        Optional documentation string.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence,
        source: Optional[str] = None,
        primary_key: Optional[Sequence[str]] = None,
        description: str = "",
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.source = source
        self.description = description
        self._attributes: List[Attribute] = []
        self._by_name: Dict[str, Attribute] = {}
        for attr in attributes:
            if isinstance(attr, str):
                attr = Attribute(attr)
            self._add_attribute(attr)
        if not self._attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        self.primary_key: Tuple[str, ...] = tuple(primary_key or ())
        for key_attr in self.primary_key:
            if key_attr not in self._by_name:
                raise SchemaError(
                    f"primary key attribute {key_attr!r} not in relation {name!r}"
                )

    def _add_attribute(self, attr: Attribute) -> None:
        if attr.name in self._by_name:
            raise SchemaError(
                f"duplicate attribute {attr.name!r} in relation {self.name!r}"
            )
        self._attributes.append(attr)
        self._by_name[attr.name] = attr
        self._names_cache: Optional[Tuple[str, ...]] = None
        self._index_cache: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The relation's attributes, in declaration order."""
        return tuple(self._attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The relation's attribute names, in declaration order (cached)."""
        cached = self._names_cache
        if cached is None:
            cached = self._names_cache = tuple(a.name for a in self._attributes)
        return cached

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        UnknownAttributeError
            If no such attribute exists.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def has_attribute(self, name: str) -> bool:
        """Return ``True`` if the relation has an attribute called ``name``."""
        return name in self._by_name

    def attribute_index(self, name: str) -> int:
        """Return the positional index of attribute ``name`` (cached).

        Hot path: every by-name cell access in a join probe goes through
        here, so the name → position map is built once per schema.
        """
        cache = self._index_cache
        if cache is None:
            cache = self._index_cache = {
                attr.name: i for i, attr in enumerate(self._attributes)
            }
        try:
            return cache[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    # ------------------------------------------------------------------
    # Qualified naming
    # ------------------------------------------------------------------
    def bind_source(self, source: str) -> None:
        """Associate this relation with a data source name."""
        self.source = source

    @property
    def qualified_name(self) -> str:
        """``"<source>.<relation>"`` or just the relation name if unbound."""
        if self.source:
            return qualified_name(self.source, self.name)
        return self.name

    def qualified_attribute(self, name: str) -> str:
        """Return ``"<source>.<relation>.<attribute>"`` for attribute ``name``."""
        self.attribute(name)  # validates existence
        return qualified_name(self.qualified_name, name)

    def qualified_attribute_names(self) -> Tuple[str, ...]:
        """Fully qualified names for all attributes, in order."""
        return tuple(self.qualified_attribute(a.name) for a in self._attributes)

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._by_name

    def __len__(self) -> int:
        return len(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationSchema({self.qualified_name!r}, {list(self.attribute_names)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.qualified_name == other.qualified_name
            and self.attributes == other.attributes
            and self.primary_key == other.primary_key
        )

    def __hash__(self) -> int:
        return hash((self.qualified_name, self.attributes, self.primary_key))


@dataclass
class SourceSchema:
    """Schema of a whole data source: a set of relations plus foreign keys.

    A *source* corresponds to one registered database in the Q system.  The
    GBCO experiments in the paper model each relation as a separate source;
    this class supports both one-relation and many-relation sources.
    """

    name: str
    relations: Dict[str, RelationSchema] = field(default_factory=dict)
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("source name must be non-empty")
        for relation in self.relations.values():
            relation.bind_source(self.name)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_relation(self, relation: RelationSchema) -> RelationSchema:
        """Add ``relation`` to this source and bind its source name."""
        if relation.name in self.relations:
            raise SchemaError(
                f"relation {relation.name!r} already exists in source {self.name!r}"
            )
        relation.bind_source(self.name)
        self.relations[relation.name] = relation
        return relation

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        """Add a foreign key after validating that both ends exist."""
        for rel_name, attr_name in (
            (fk.source_relation, fk.source_attribute),
            (fk.target_relation, fk.target_attribute),
        ):
            relation = self.relations.get(rel_name)
            if relation is None:
                raise SchemaError(
                    f"foreign key references unknown relation {rel_name!r} "
                    f"in source {self.name!r}"
                )
            if not relation.has_attribute(attr_name):
                raise SchemaError(
                    f"foreign key references unknown attribute "
                    f"{rel_name}.{attr_name} in source {self.name!r}"
                )
        self.foreign_keys.append(fk)
        return fk

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def relation(self, name: str) -> RelationSchema:
        """Return the relation called ``name`` (local name)."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r} in source {self.name!r}"
            ) from None

    def relation_names(self) -> Tuple[str, ...]:
        """Local names of all relations, in insertion order."""
        return tuple(self.relations.keys())

    def all_attributes(self) -> List[Tuple[RelationSchema, Attribute]]:
        """Return every (relation, attribute) pair in the source."""
        pairs: List[Tuple[RelationSchema, Attribute]] = []
        for relation in self.relations.values():
            for attr in relation:
                pairs.append((relation, attr))
        return pairs

    @property
    def attribute_count(self) -> int:
        """Total number of attributes across all relations."""
        return sum(len(r) for r in self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SourceSchema({self.name!r}, relations={list(self.relations)!r}, "
            f"foreign_keys={len(self.foreign_keys)})"
        )
