"""Data sources (schema + tables) and the global catalog.

A :class:`DataSource` bundles a :class:`~repro.datastore.schema.SourceSchema`
with a :class:`~repro.datastore.table.Table` per relation.  A
:class:`Catalog` is the set of all sources currently registered with the Q
system; the search graph is constructed from a catalog, and the registration
service adds new sources to it at runtime.

Storage routing
---------------
A catalog may own a :class:`~repro.storage.base.StorageBackend` (an explicit
``backend=`` argument, or the ``REPRO_BACKEND`` environment default).  When
it does, :meth:`Catalog.add_source` *attaches* every table of the admitted
source: rows migrate into the catalog's backend in one bulk ingest and the
source's schema is persisted as catalog metadata, so persistent backends
(SQLite files) can reconstruct the whole catalog on reopen via
:meth:`Catalog.load_persisted`.  :meth:`Catalog.remove_source` detaches the
tables back onto private memory storage — a removed (or rolled-back) source
leaves no data behind in the shared backend but remains fully usable.
Without a catalog backend, sources keep their private per-table memory
storage — the seed behavior, unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SchemaError, UnknownRelationError
from .schema import Attribute, ForeignKey, RelationSchema, SourceSchema
from .table import Table
from .types import ValueType


def source_schema_payload(schema: SourceSchema) -> Dict[str, object]:
    """JSON-compatible description of a source schema (no row data)."""
    return {
        "name": schema.name,
        "description": schema.description,
        "relations": [
            {
                "name": relation.name,
                "description": relation.description,
                "primary_key": list(relation.primary_key),
                "attributes": [
                    {
                        "name": attr.name,
                        "value_type": attr.value_type.value,
                        "description": attr.description,
                    }
                    for attr in relation
                ],
            }
            for relation in schema
        ],
        "foreign_keys": [list(fk.as_tuple()) for fk in schema.foreign_keys],
    }


def source_schema_from_payload(payload: Mapping[str, object]) -> SourceSchema:
    """Inverse of :func:`source_schema_payload`."""
    schema = SourceSchema(payload["name"], description=payload.get("description", ""))
    for spec in payload.get("relations", ()):
        schema.add_relation(
            RelationSchema(
                spec["name"],
                [
                    Attribute(
                        attr["name"],
                        ValueType(attr.get("value_type", "string")),
                        attr.get("description", ""),
                    )
                    for attr in spec["attributes"]
                ],
                primary_key=spec.get("primary_key") or None,
                description=spec.get("description", ""),
            )
        )
    for fk in payload.get("foreign_keys", ()):
        schema.add_foreign_key(ForeignKey(*fk))
    return schema


class DataSource:
    """One registered database: a schema plus per-relation tuple storage.

    Parameters
    ----------
    schema:
        The source schema (relations are bound to the source name).
    backend:
        Optional storage backend the relations are created on; defaults to
        private per-table memory storage.
    """

    def __init__(self, schema: SourceSchema, backend=None) -> None:
        self.schema = schema
        self._backend = backend
        #: Set by a backend-bound catalog on admission: called after
        #: post-admission schema evolution so persisted catalog metadata
        #: stays in sync with the live schema.
        self._on_schema_change = None
        self._tables: Dict[str, Table] = {
            name: Table(relation, backend=backend)
            for name, relation in schema.relations.items()
        }

    @classmethod
    def adopt(cls, schema: SourceSchema, backend) -> "DataSource":
        """Bind a source to relations *already stored* on ``backend``.

        Used when reopening a persistent catalog: the rows are in the
        backend; only the schema objects are reconstructed and re-bound.
        """
        source = cls.__new__(cls)
        source.schema = schema
        source._backend = backend
        source._on_schema_change = None
        source._tables = {
            name: Table(relation, backend=backend, adopt=True)
            for name, relation in schema.relations.items()
        }
        return source

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        relations: Mapping[str, Sequence[str]],
        data: Optional[Mapping[str, Iterable]] = None,
        foreign_keys: Optional[Iterable[Tuple[str, str, str, str]]] = None,
        description: str = "",
        backend=None,
    ) -> "DataSource":
        """Build a source from plain Python structures.

        Parameters
        ----------
        name:
            Source name.
        relations:
            Mapping from relation name to its sequence of attribute names.
        data:
            Optional mapping from relation name to an iterable of rows
            (mappings or positional sequences).
        foreign_keys:
            Optional iterable of ``(src_rel, src_attr, dst_rel, dst_attr)``.
        backend:
            Optional storage backend for the relations.
        """
        schema = SourceSchema(name, description=description)
        for rel_name, attributes in relations.items():
            schema.add_relation(RelationSchema(rel_name, list(attributes)))
        for fk in foreign_keys or ():
            schema.add_foreign_key(ForeignKey(*fk))
        source = cls(schema, backend=backend)
        for rel_name, rows in (data or {}).items():
            source.table(rel_name).extend(rows)
        return source

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The source name."""
        return self.schema.name

    def table(self, relation: str) -> Table:
        """Return the table for the relation named ``relation`` (local name)."""
        try:
            return self._tables[relation]
        except KeyError:
            raise UnknownRelationError(f"{self.name}.{relation}") from None

    def tables(self) -> Tuple[Table, ...]:
        """All tables of the source."""
        return tuple(self._tables.values())

    def add_relation(self, relation: RelationSchema, rows: Optional[Iterable] = None) -> Table:
        """Add a new relation (and optionally rows) to this source.

        On a source already admitted to a backend-bound catalog, the new
        relation is created on that backend and the catalog's persisted
        schema metadata is refreshed, so the relation survives a reopen.
        """
        self.schema.add_relation(relation)
        table = Table(relation, backend=self._backend)
        if rows is not None:
            table.extend(rows)
        self._tables[relation.name] = table
        if self._on_schema_change is not None:
            self._on_schema_change(self)
        return table

    @property
    def relation_count(self) -> int:
        """Number of relations in the source."""
        return len(self._tables)

    @property
    def attribute_count(self) -> int:
        """Total number of attributes in the source."""
        return self.schema.attribute_count

    @property
    def row_count(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(t) for t in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataSource({self.name!r}, relations={list(self._tables)!r})"


class Catalog:
    """The set of data sources known to the system.

    The catalog is the authoritative registry from which the search graph is
    (re)constructed, and the target of the new-source registration service.

    Parameters
    ----------
    sources:
        Initial data sources.
    backend:
        Optional catalog-level storage backend — a
        :class:`~repro.storage.base.StorageBackend`, a name
        (``"memory"`` / ``"sqlite"`` / ``"sqlite:<path>"``), or ``None``
        to consult the ``REPRO_BACKEND`` environment variable (unset means
        private per-table memory storage, the seed behavior).  A persistent
        backend that already holds catalog metadata is loaded eagerly.
    """

    def __init__(self, sources: Optional[Iterable[DataSource]] = None, backend=None) -> None:
        from ..storage import backend_from_env, resolve_backend

        self._backend = resolve_backend(backend) if backend is not None else backend_from_env()
        self._sources: Dict[str, DataSource] = {}
        if self._backend is not None:
            self.load_persisted()
        for source in sources or ():
            self.add_source(source)

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def backend(self):
        """The catalog-level storage backend, or ``None`` (per-table memory)."""
        return self._backend

    @property
    def backend_kind(self) -> str:
        """Short name of the storage implementation serving this catalog."""
        return self._backend.kind if self._backend is not None else "memory"

    def load_persisted(self) -> Tuple[str, ...]:
        """Reconstruct sources persisted in the backend's catalog metadata.

        Returns the names of the sources loaded.  Rows are *not* re-ingested
        — the freshly bound tables adopt the backend's stored relations.
        """
        if self._backend is None:
            return ()
        loaded: List[str] = []
        for payload in self._backend.persisted_source_schemas():
            schema = source_schema_from_payload(payload)
            if schema.name in self._sources:
                continue
            source = DataSource.adopt(schema, self._backend)
            source._on_schema_change = self._persist_source_schema
            self._sources[schema.name] = source
            loaded.append(schema.name)
        return tuple(loaded)

    def storage_size_bytes(self) -> int:
        """Approximate stored bytes across the catalog's relations."""
        if self._backend is not None:
            return self._backend.storage_size_bytes()
        return sum(
            table.storage_backend.storage_size_bytes() for table in self.all_tables()
        )

    def close(self) -> None:
        """Release the catalog backend's resources (no-op without one)."""
        if self._backend is not None:
            self._backend.close()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> DataSource:
        """Register ``source``; raises if a source with that name exists.

        With a catalog backend, every table of the source is attached —
        rows are bulk-ingested into the backend — and the source schema is
        persisted; failure rolls back the tables already attached.
        """
        if source.name in self._sources:
            raise SchemaError(f"source {source.name!r} already registered")
        if self._backend is not None:
            attached: List[Table] = []
            try:
                for table in source:
                    table.attach(self._backend)
                    attached.append(table)
                self._backend.save_source_schema(
                    source.name, source_schema_payload(source.schema)
                )
            except Exception:
                # Roll back completely: a failed admission (attach *or*
                # metadata persistence) must leave no rows behind in the
                # shared backend.
                for table in attached:
                    table.detach()
                raise
            source._backend = self._backend
            source._on_schema_change = self._persist_source_schema
        self._sources[source.name] = source
        return source

    def _persist_source_schema(self, source: DataSource) -> None:
        """Re-save a registered source's schema metadata (post-admission
        schema evolution, e.g. :meth:`DataSource.add_relation`)."""
        if self._backend is not None and source.name in self._sources:
            self._backend.save_source_schema(
                source.name, source_schema_payload(source.schema)
            )

    def remove_source(self, name: str) -> DataSource:
        """Remove and return the source called ``name``.

        With a catalog backend the source's relations are detached — moved
        back onto private memory storage and dropped from the backend — so
        a removal (e.g. the registration rollback path) never strands data.
        """
        try:
            source = self._sources.pop(name)
        except KeyError:
            raise SchemaError(f"source {name!r} is not registered") from None
        if self._backend is not None:
            for table in source:
                if table.storage_backend is self._backend:
                    table.detach()
            self._backend.delete_source_schema(name)
            source._backend = None
            source._on_schema_change = None
        return source

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def source(self, name: str) -> DataSource:
        """Return the source called ``name``."""
        try:
            return self._sources[name]
        except KeyError:
            raise SchemaError(f"source {name!r} is not registered") from None

    def has_source(self, name: str) -> bool:
        """Return ``True`` if a source called ``name`` is registered."""
        return name in self._sources

    def sources(self) -> Tuple[DataSource, ...]:
        """All registered sources, in registration order."""
        return tuple(self._sources.values())

    def source_names(self) -> Tuple[str, ...]:
        """Names of all registered sources."""
        return tuple(self._sources.keys())

    def relation(self, qualified: str) -> Table:
        """Resolve a qualified relation name ``"<source>.<relation>"`` to its table."""
        parts = qualified.split(".")
        if len(parts) != 2:
            raise UnknownRelationError(qualified)
        source_name, relation_name = parts
        if source_name not in self._sources:
            raise UnknownRelationError(qualified)
        return self._sources[source_name].table(relation_name)

    def all_tables(self) -> List[Table]:
        """Every table in every registered source."""
        tables: List[Table] = []
        for source in self._sources.values():
            tables.extend(source.tables())
        return tables

    def all_foreign_keys(self) -> List[Tuple[str, ForeignKey]]:
        """Every foreign key, paired with its owning source name."""
        result: List[Tuple[str, ForeignKey]] = []
        for source in self._sources.values():
            for fk in source.schema.foreign_keys:
                result.append((source.name, fk))
        return result

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def source_count(self) -> int:
        """Number of registered sources."""
        return len(self._sources)

    @property
    def relation_count(self) -> int:
        """Number of relations across all sources."""
        return sum(s.relation_count for s in self._sources.values())

    @property
    def attribute_count(self) -> int:
        """Number of attributes across all sources."""
        return sum(s.attribute_count for s in self._sources.values())

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._sources

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(sources={list(self._sources)!r})"
