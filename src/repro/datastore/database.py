"""Data sources (schema + tables) and the global catalog.

A :class:`DataSource` bundles a :class:`~repro.datastore.schema.SourceSchema`
with a :class:`~repro.datastore.table.Table` per relation.  A
:class:`Catalog` is the set of all sources currently registered with the Q
system; the search graph is constructed from a catalog, and the registration
service adds new sources to it at runtime.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SchemaError, UnknownRelationError
from .schema import ForeignKey, RelationSchema, SourceSchema
from .table import Table


class DataSource:
    """One registered database: a schema plus per-relation tuple storage."""

    def __init__(self, schema: SourceSchema) -> None:
        self.schema = schema
        self._tables: Dict[str, Table] = {
            name: Table(relation) for name, relation in schema.relations.items()
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        name: str,
        relations: Mapping[str, Sequence[str]],
        data: Optional[Mapping[str, Iterable]] = None,
        foreign_keys: Optional[Iterable[Tuple[str, str, str, str]]] = None,
        description: str = "",
    ) -> "DataSource":
        """Build a source from plain Python structures.

        Parameters
        ----------
        name:
            Source name.
        relations:
            Mapping from relation name to its sequence of attribute names.
        data:
            Optional mapping from relation name to an iterable of rows
            (mappings or positional sequences).
        foreign_keys:
            Optional iterable of ``(src_rel, src_attr, dst_rel, dst_attr)``.
        """
        schema = SourceSchema(name, description=description)
        for rel_name, attributes in relations.items():
            schema.add_relation(RelationSchema(rel_name, list(attributes)))
        for fk in foreign_keys or ():
            schema.add_foreign_key(ForeignKey(*fk))
        source = cls(schema)
        for rel_name, rows in (data or {}).items():
            source.table(rel_name).extend(rows)
        return source

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The source name."""
        return self.schema.name

    def table(self, relation: str) -> Table:
        """Return the table for the relation named ``relation`` (local name)."""
        try:
            return self._tables[relation]
        except KeyError:
            raise UnknownRelationError(f"{self.name}.{relation}") from None

    def tables(self) -> Tuple[Table, ...]:
        """All tables of the source."""
        return tuple(self._tables.values())

    def add_relation(self, relation: RelationSchema, rows: Optional[Iterable] = None) -> Table:
        """Add a new relation (and optionally rows) to this source."""
        self.schema.add_relation(relation)
        table = Table(relation)
        if rows is not None:
            table.extend(rows)
        self._tables[relation.name] = table
        return table

    @property
    def relation_count(self) -> int:
        """Number of relations in the source."""
        return len(self._tables)

    @property
    def attribute_count(self) -> int:
        """Total number of attributes in the source."""
        return self.schema.attribute_count

    @property
    def row_count(self) -> int:
        """Total number of stored tuples across all relations."""
        return sum(len(t) for t in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataSource({self.name!r}, relations={list(self._tables)!r})"


class Catalog:
    """The set of data sources known to the system.

    The catalog is the authoritative registry from which the search graph is
    (re)constructed, and the target of the new-source registration service.
    """

    def __init__(self, sources: Optional[Iterable[DataSource]] = None) -> None:
        self._sources: Dict[str, DataSource] = {}
        for source in sources or ():
            self.add_source(source)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> DataSource:
        """Register ``source``; raises if a source with that name exists."""
        if source.name in self._sources:
            raise SchemaError(f"source {source.name!r} already registered")
        self._sources[source.name] = source
        return source

    def remove_source(self, name: str) -> DataSource:
        """Remove and return the source called ``name``."""
        try:
            return self._sources.pop(name)
        except KeyError:
            raise SchemaError(f"source {name!r} is not registered") from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def source(self, name: str) -> DataSource:
        """Return the source called ``name``."""
        try:
            return self._sources[name]
        except KeyError:
            raise SchemaError(f"source {name!r} is not registered") from None

    def has_source(self, name: str) -> bool:
        """Return ``True`` if a source called ``name`` is registered."""
        return name in self._sources

    def sources(self) -> Tuple[DataSource, ...]:
        """All registered sources, in registration order."""
        return tuple(self._sources.values())

    def source_names(self) -> Tuple[str, ...]:
        """Names of all registered sources."""
        return tuple(self._sources.keys())

    def relation(self, qualified: str) -> Table:
        """Resolve a qualified relation name ``"<source>.<relation>"`` to its table."""
        parts = qualified.split(".")
        if len(parts) != 2:
            raise UnknownRelationError(qualified)
        source_name, relation_name = parts
        if source_name not in self._sources:
            raise UnknownRelationError(qualified)
        return self._sources[source_name].table(relation_name)

    def all_tables(self) -> List[Table]:
        """Every table in every registered source."""
        tables: List[Table] = []
        for source in self._sources.values():
            tables.extend(source.tables())
        return tables

    def all_foreign_keys(self) -> List[Tuple[str, ForeignKey]]:
        """Every foreign key, paired with its owning source name."""
        result: List[Tuple[str, ForeignKey]] = []
        for source in self._sources.values():
            for fk in source.schema.foreign_keys:
                result.append((source.name, fk))
        return result

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def source_count(self) -> int:
        """Number of registered sources."""
        return len(self._sources)

    @property
    def relation_count(self) -> int:
        """Number of relations across all sources."""
        return sum(s.relation_count for s in self._sources.values())

    @property
    def attribute_count(self) -> int:
        """Number of attributes across all sources."""
        return sum(s.attribute_count for s in self._sources.values())

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._sources

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(sources={list(self._sources)!r})"
