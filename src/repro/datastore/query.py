"""Conjunctive query model.

Each Steiner tree found in the query graph is translated into a conjunctive
query (paper Section 2.2): relation nodes in (or attached to) the tree become
query *atoms*, non-zero-cost edges between attributes become *join
predicates*, and keyword-match edges become *selection predicates*.  The
queries produced for one keyword query are then combined by a ranked
*disjoint union* (see :mod:`repro.datastore.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import QueryError


@dataclass(frozen=True)
class QueryAtom:
    """One relation occurrence in a conjunctive query.

    Attributes
    ----------
    relation:
        Qualified relation name (``"<source>.<relation>"``).
    alias:
        Alias used to refer to this occurrence in predicates; allows self
        joins.  Defaults to the relation name.
    """

    relation: str
    alias: str

    @classmethod
    def of(cls, relation: str, alias: Optional[str] = None) -> "QueryAtom":
        """Create an atom, defaulting the alias to the relation name."""
        return cls(relation, alias or relation)


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join condition ``left_alias.left_attribute = right_alias.right_attribute``.

    Joins compare *canonicalized* values (see
    :func:`repro.datastore.types.canonicalize`) so that sources with
    different value representations can still join.
    """

    left_alias: str
    left_attribute: str
    right_alias: str
    right_attribute: str

    def reversed(self) -> "JoinPredicate":
        """Return the same join with the two sides swapped."""
        return JoinPredicate(
            self.right_alias, self.right_attribute, self.left_alias, self.left_attribute
        )


@dataclass(frozen=True)
class SelectionPredicate:
    """A keyword selection condition on one attribute.

    ``mode`` controls the match semantics:

    * ``"equals"`` — canonical value equality,
    * ``"contains"`` — case-insensitive substring containment,
    * ``"keyword"`` — token containment (every query token appears in the
      value's token set); this is the default used for keyword queries.
    """

    alias: str
    attribute: str
    value: str
    mode: str = "keyword"

    VALID_MODES = ("equals", "contains", "keyword")

    def __post_init__(self) -> None:
        if self.mode not in self.VALID_MODES:
            raise QueryError(f"invalid selection mode {self.mode!r}")


@dataclass(frozen=True)
class OutputColumn:
    """One column of a query's select-list.

    ``label`` is the output column name; the disjoint-union logic may rename
    labels so that semantically compatible columns from different queries
    share one output column (paper Section 2.2).
    """

    alias: str
    attribute: str
    label: str

    def renamed(self, label: str) -> "OutputColumn":
        """Return this column with a different output label."""
        return OutputColumn(self.alias, self.attribute, label)


@dataclass
class ConjunctiveQuery:
    """A conjunctive (select-project-join) query with an associated cost.

    Attributes
    ----------
    atoms:
        Relation occurrences.
    joins:
        Equi-join predicates between atoms.
    selections:
        Keyword selection predicates.
    outputs:
        The select-list.  If empty, all attributes of all atoms are output.
    cost:
        The query's cost (the Steiner tree cost it was generated from);
        lower cost means higher rank.
    provenance:
        Free-form description of where the query came from (e.g. the Steiner
        tree identifier); propagated to every answer the query produces.
    """

    atoms: List[QueryAtom] = field(default_factory=list)
    joins: List[JoinPredicate] = field(default_factory=list)
    selections: List[SelectionPredicate] = field(default_factory=list)
    outputs: List[OutputColumn] = field(default_factory=list)
    cost: float = 0.0
    provenance: str = ""

    # ------------------------------------------------------------------
    # Builder-style helpers
    # ------------------------------------------------------------------
    def add_atom(self, relation: str, alias: Optional[str] = None) -> QueryAtom:
        """Add a relation occurrence; raises on duplicate alias."""
        atom = QueryAtom.of(relation, alias)
        if any(existing.alias == atom.alias for existing in self.atoms):
            raise QueryError(f"duplicate alias {atom.alias!r} in query")
        self.atoms.append(atom)
        return atom

    def add_join(
        self, left_alias: str, left_attribute: str, right_alias: str, right_attribute: str
    ) -> JoinPredicate:
        """Add an equi-join predicate between two aliases."""
        self._require_alias(left_alias)
        self._require_alias(right_alias)
        predicate = JoinPredicate(left_alias, left_attribute, right_alias, right_attribute)
        self.joins.append(predicate)
        return predicate

    def add_selection(
        self, alias: str, attribute: str, value: str, mode: str = "keyword"
    ) -> SelectionPredicate:
        """Add a keyword selection predicate on ``alias.attribute``."""
        self._require_alias(alias)
        predicate = SelectionPredicate(alias, attribute, value, mode)
        self.selections.append(predicate)
        return predicate

    def add_output(self, alias: str, attribute: str, label: Optional[str] = None) -> OutputColumn:
        """Add a select-list column (label defaults to ``alias.attribute``)."""
        self._require_alias(alias)
        column = OutputColumn(alias, attribute, label or f"{alias}.{attribute}")
        self.outputs.append(column)
        return column

    def _require_alias(self, alias: str) -> None:
        if not any(atom.alias == alias for atom in self.atoms):
            raise QueryError(f"alias {alias!r} is not bound by any atom")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def alias_map(self) -> Dict[str, str]:
        """Mapping from alias to qualified relation name."""
        return {atom.alias: atom.relation for atom in self.atoms}

    def relations(self) -> Tuple[str, ...]:
        """Qualified names of all relations referenced by the query."""
        return tuple(atom.relation for atom in self.atoms)

    def output_labels(self) -> Tuple[str, ...]:
        """Labels of the select-list columns, in order."""
        return tuple(column.label for column in self.outputs)

    def rename_output(self, index: int, label: str) -> None:
        """Rename the ``index``-th output column (used by the disjoint union)."""
        self.outputs[index] = self.outputs[index].renamed(label)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`QueryError` on problems."""
        if not self.atoms:
            raise QueryError("query must have at least one atom")
        aliases = [atom.alias for atom in self.atoms]
        if len(aliases) != len(set(aliases)):
            raise QueryError("duplicate aliases in query")
        for join in self.joins:
            self._require_alias(join.left_alias)
            self._require_alias(join.right_alias)
        for selection in self.selections:
            self._require_alias(selection.alias)
        for output in self.outputs:
            self._require_alias(output.alias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConjunctiveQuery(atoms={[a.alias for a in self.atoms]!r}, "
            f"joins={len(self.joins)}, selections={len(self.selections)}, "
            f"cost={self.cost:.3f})"
        )
