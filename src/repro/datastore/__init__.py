"""Relational substrate: schemas, tables, catalogs, indexes and query execution.

This subpackage provides everything the Q system needs from a database layer:

* :class:`Attribute`, :class:`RelationSchema`, :class:`SourceSchema`,
  :class:`ForeignKey` — metadata (paper Section 2.1).
* :class:`Table`, :class:`Row` — relation facade over pluggable tuple
  storage (:mod:`repro.storage`: in-memory or SQLite backends).
* :class:`DataSource`, :class:`Catalog` — registered sources.
* :class:`ValueIndex`, :class:`TokenIndex` — inverted indexes for keyword
  matching and the value-overlap filter.
* :class:`ConjunctiveQuery` and friends, :class:`QueryExecutor`,
  :class:`AnswerTuple`, :class:`TupleProvenance` — ranked query execution
  with provenance (paper Section 2.2).
* CSV / JSON loading via :mod:`repro.datastore.csvio` and SQL rendering via
  :mod:`repro.datastore.sqlgen`.
"""

from .database import Catalog, DataSource
from .executor import QueryExecutor
from .indexes import TokenIndex, ValueIndex, ValueOccurrence
from .provenance import AnswerTuple, TupleProvenance
from .query import (
    ConjunctiveQuery,
    JoinPredicate,
    OutputColumn,
    QueryAtom,
    SelectionPredicate,
)
from .schema import Attribute, ForeignKey, RelationSchema, SourceSchema, qualified_name, split_qualified
from .table import Row, Table
from .types import ValueType, canonicalize, infer_column_type, infer_value_type, is_null

__all__ = [
    "AnswerTuple",
    "Attribute",
    "Catalog",
    "ConjunctiveQuery",
    "DataSource",
    "ForeignKey",
    "JoinPredicate",
    "OutputColumn",
    "QueryAtom",
    "QueryExecutor",
    "RelationSchema",
    "Row",
    "SelectionPredicate",
    "SourceSchema",
    "Table",
    "TokenIndex",
    "TupleProvenance",
    "ValueIndex",
    "ValueOccurrence",
    "ValueType",
    "canonicalize",
    "infer_column_type",
    "infer_value_type",
    "is_null",
    "qualified_name",
    "split_qualified",
]
