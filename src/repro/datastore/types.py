"""Lightweight value typing for the relational substrate.

The Q system reasons about *type compatibility* of attributes — e.g. the MAD
matcher prunes numeric columns because they "are likely to induce spurious
associations between attributes" (Section 5.2.1 of the paper).  This module
provides a small, dependency-free type system used by
:mod:`repro.datastore.schema` and the matchers.
"""

from __future__ import annotations

import enum
import math
import re
from functools import lru_cache
from typing import Any, Iterable, Optional


class ValueType(enum.Enum):
    """Coarse-grained value types recognised by the substrate."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    IDENTIFIER = "identifier"
    NULL = "null"

    def is_numeric(self) -> bool:
        """Return ``True`` for the numeric types (integer / float)."""
        return self in (ValueType.INTEGER, ValueType.FLOAT)

    def is_textual(self) -> bool:
        """Return ``True`` for string-like types (string / identifier)."""
        return self in (ValueType.STRING, ValueType.IDENTIFIER)


_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
# Identifiers in bioinformatics databases frequently look like "GO:0005134"
# or "IPR000001": an alphabetic prefix followed by punctuation/digits.
_IDENTIFIER_RE = re.compile(r"^[A-Za-z]{1,10}[:_\-]?\d{2,}$")
_BOOL_VALUES = {"true", "false", "t", "f", "yes", "no"}


def infer_value_type(value: Any) -> ValueType:
    """Infer the :class:`ValueType` of a single Python value.

    ``None`` and NaN floats map to :data:`ValueType.NULL`.  Strings are
    inspected syntactically so that CSV-loaded data (all strings) still gets
    useful types.
    """
    if value is None:
        return ValueType.NULL
    if isinstance(value, bool):
        return ValueType.BOOLEAN
    if isinstance(value, int):
        return ValueType.INTEGER
    if isinstance(value, float):
        if math.isnan(value):
            return ValueType.NULL
        return ValueType.FLOAT
    text = str(value).strip()
    if not text:
        return ValueType.NULL
    if text.lower() in _BOOL_VALUES:
        return ValueType.BOOLEAN
    if _INT_RE.match(text):
        return ValueType.INTEGER
    if _FLOAT_RE.match(text):
        return ValueType.FLOAT
    if _IDENTIFIER_RE.match(text):
        return ValueType.IDENTIFIER
    return ValueType.STRING


def infer_column_type(values: Iterable[Any], sample_limit: Optional[int] = 1000) -> ValueType:
    """Infer the dominant :class:`ValueType` of a column of values.

    The most frequent non-null type wins.  Ties are broken in favour of the
    more general type (``STRING`` > ``IDENTIFIER`` > ``FLOAT`` > ``INTEGER``
    > ``BOOLEAN``).  If every value is null, :data:`ValueType.NULL` is
    returned.

    Parameters
    ----------
    values:
        Any iterable of cell values.
    sample_limit:
        Only the first ``sample_limit`` values are inspected (``None`` means
        inspect everything).  Keeps inference cheap on very large columns.
    """
    generality = {
        ValueType.STRING: 5,
        ValueType.IDENTIFIER: 4,
        ValueType.FLOAT: 3,
        ValueType.INTEGER: 2,
        ValueType.BOOLEAN: 1,
        ValueType.NULL: 0,
    }
    counts: dict[ValueType, int] = {}
    for i, value in enumerate(values):
        if sample_limit is not None and i >= sample_limit:
            break
        vtype = infer_value_type(value)
        if vtype is ValueType.NULL:
            continue
        counts[vtype] = counts.get(vtype, 0) + 1
    if not counts:
        return ValueType.NULL
    return max(counts, key=lambda t: (counts[t], generality[t]))


def is_null(value: Any) -> bool:
    """Return ``True`` if ``value`` should be treated as SQL NULL."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and not value.strip():
        return True
    return False


@lru_cache(maxsize=131072)
def _canonicalize_str(value: str) -> Optional[str]:
    stripped = value.strip()
    return stripped or None


def canonicalize(value: Any) -> Optional[str]:
    """Return the canonical string form of ``value`` used for joins/overlap.

    Values are compared *textually* throughout the library (the paper joins
    on shared data values across heterogeneous sources, where one side may
    store ``42`` and the other ``"42"``).  Whitespace is stripped and case
    preserved; null-like values canonicalize to ``None``.  The string fast
    path is memoized — joins and index builds canonicalize the same cell
    values constantly.
    """
    if type(value) is str:
        return _canonicalize_str(value)
    if is_null(value):
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value).strip()
