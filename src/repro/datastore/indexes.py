"""Inverted indexes over data values.

Two indexes support the Q pipeline:

* :class:`ValueIndex` — maps canonical data values to the ``(table,
  attribute, row)`` occurrences.  Used for lazy keyword-to-value matching in
  the query graph (paper Section 2.2) and for the "Value Overlap Filter"
  variant in the Figure 7 experiment.
* :class:`TokenIndex` — maps text tokens to the attribute values containing
  them, with document frequencies.  This backs the tf-idf keyword similarity
  metric.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..similarity.tokenize import tokenize
from .database import Catalog, DataSource
from .table import Table
from .types import canonicalize


@dataclass(frozen=True)
class ValueOccurrence:
    """One occurrence of a data value in a specific table cell."""

    relation: str  # qualified relation name, "<source>.<relation>"
    attribute: str  # local attribute name
    row_id: int
    value: str  # canonical value


class ValueIndex:
    """Inverted index from canonical values to their occurrences.

    Maintenance is incremental in both directions: :meth:`index_source`
    appends a new source's cells without touching existing entries, and
    :meth:`remove_source` / :meth:`remove_table` retract a source's
    contribution exactly (per-relation value bookkeeping keeps retraction
    proportional to the removed relation's footprint, not the index size).
    The registration service relies on this to roll back a failed
    registration without a full rebuild.
    """

    def __init__(self) -> None:
        self._occurrences: Dict[str, List[ValueOccurrence]] = defaultdict(list)
        self._attribute_values: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        #: relation -> canonical values it contributed (for exact retraction).
        self._relation_values: Dict[str, Set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def index_table(self, table: Table) -> None:
        """Add every cell of ``table`` to the index."""
        relation = table.schema.qualified_name
        relation_values = self._relation_values[relation]
        for row in table.scan():
            for attr_name, value in zip(table.schema.attribute_names, row.values):
                canon = canonicalize(value)
                if canon is None:
                    continue
                occurrence = ValueOccurrence(relation, attr_name, row.row_id, canon)
                self._occurrences[canon].append(occurrence)
                self._attribute_values[(relation, attr_name)].add(canon)
                relation_values.add(canon)

    def index_source(self, source: DataSource) -> None:
        """Index every table of ``source`` (purely additive)."""
        for table in source:
            self.index_table(table)

    # ------------------------------------------------------------------
    # Retraction
    # ------------------------------------------------------------------
    def remove_table(self, relation: str) -> None:
        """Drop every entry contributed by ``relation``."""
        values = self._relation_values.pop(relation, set())
        for value in values:
            occurrences = self._occurrences.get(value)
            if occurrences is None:
                continue
            kept = [o for o in occurrences if o.relation != relation]
            if kept:
                self._occurrences[value] = kept
            else:
                del self._occurrences[value]
        for key in [k for k in self._attribute_values if k[0] == relation]:
            del self._attribute_values[key]

    def remove_source(self, source_name: str) -> None:
        """Drop every entry contributed by any relation of ``source_name``."""
        prefix = f"{source_name}."
        for relation in [r for r in self._relation_values if r.startswith(prefix)]:
            self.remove_table(relation)

    @classmethod
    def from_catalog(cls, catalog: Catalog) -> "ValueIndex":
        """Build an index over every table of every source in ``catalog``."""
        index = cls()
        for source in catalog:
            index.index_source(source)
        return index

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, value: str) -> Tuple[ValueOccurrence, ...]:
        """Exact lookup of a canonical value."""
        canon = canonicalize(value)
        if canon is None:
            return ()
        return tuple(self._occurrences.get(canon, ()))

    def lookup_substring(self, needle: str, limit: Optional[int] = None) -> Tuple[ValueOccurrence, ...]:
        """Case-insensitive substring lookup over indexed values.

        Used when a keyword only partially matches stored values (e.g. the
        keyword ``membrane`` matching the GO term ``plasma membrane``).
        """
        needle_lower = needle.lower()
        matches: List[ValueOccurrence] = []
        for value, occurrences in self._occurrences.items():
            if needle_lower in value.lower():
                matches.extend(occurrences)
                if limit is not None and len(matches) >= limit:
                    return tuple(matches[:limit])
        return tuple(matches)

    def attribute_values(self, relation: str, attribute: str) -> Set[str]:
        """Distinct canonical values stored in ``relation.attribute``."""
        return set(self._attribute_values.get((relation, attribute), set()))

    def attributes_with_value(self, value: str) -> Set[Tuple[str, str]]:
        """All ``(relation, attribute)`` pairs containing ``value``."""
        canon = canonicalize(value)
        if canon is None:
            return set()
        return {(o.relation, o.attribute) for o in self._occurrences.get(canon, ())}

    def overlap(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> int:
        """Number of shared distinct values between two attributes."""
        values_a = self._attribute_values.get((relation_a, attribute_a), set())
        values_b = self._attribute_values.get((relation_b, attribute_b), set())
        return len(values_a & values_b)

    def has_overlap(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> bool:
        """Whether two attributes share at least one value (join is possible)."""
        return self.overlap(relation_a, attribute_a, relation_b, attribute_b) > 0

    @property
    def distinct_value_count(self) -> int:
        """Number of distinct values in the index."""
        return len(self._occurrences)

    def indexed_attributes(self) -> Tuple[Tuple[str, str], ...]:
        """All ``(relation, attribute)`` pairs that have at least one value."""
        return tuple(self._attribute_values.keys())


class TokenIndex:
    """Token-level inverted index with document frequencies.

    Every attribute value and every schema label (relation and attribute
    name) is treated as a "document".  The index exposes document
    frequencies used by the tf-idf keyword similarity metric.

    Like :class:`ValueIndex`, the index supports exact incremental
    maintenance: :meth:`index_table` / :meth:`index_source` add a
    relation's documents (tracking their ids per relation), and
    :meth:`remove_table` / :meth:`remove_source` retract them without a
    full rebuild.
    """

    def __init__(self) -> None:
        self.document_count = 0
        self._document_frequency: Dict[str, int] = defaultdict(int)
        self._documents: Dict[str, Set[str]] = {}
        #: relation -> ids of the documents it contributed.
        self._relation_documents: Dict[str, Set[str]] = defaultdict(set)

    def add_document(self, doc_id: str, text: str) -> None:
        """Add (or replace) a document's token set."""
        tokens = set(tokenize(text))
        previous = self._documents.get(doc_id)
        if previous is not None:
            for token in previous:
                self._document_frequency[token] -= 1
            self.document_count -= 1
        self._documents[doc_id] = tokens
        self.document_count += 1
        for token in tokens:
            self._document_frequency[token] += 1

    def remove_document(self, doc_id: str) -> None:
        """Drop one document (no-op when unknown)."""
        tokens = self._documents.pop(doc_id, None)
        if tokens is None:
            return
        self.document_count -= 1
        for token in tokens:
            remaining = self._document_frequency[token] - 1
            if remaining > 0:
                self._document_frequency[token] = remaining
            else:
                del self._document_frequency[token]

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token``."""
        return self._document_frequency.get(token.lower(), 0)

    def tokens(self, doc_id: str) -> Set[str]:
        """The token set of document ``doc_id`` (empty if unknown)."""
        return set(self._documents.get(doc_id, set()))

    # ------------------------------------------------------------------
    # Relation-level maintenance
    # ------------------------------------------------------------------
    def index_table(self, table: Table, include_values: bool = True) -> None:
        """Add one relation's schema labels (and optionally values)."""
        relation = table.schema.qualified_name
        tracked = self._relation_documents[relation]

        def add(doc_id: str, text: str) -> None:
            self.add_document(doc_id, text)
            tracked.add(doc_id)

        add(f"relation:{relation}", table.schema.name)
        for attr in table.schema:
            add(f"attribute:{relation}.{attr.name}", attr.name)
        if include_values:
            for row in table.scan():
                for attr_name, value in zip(table.schema.attribute_names, row.values):
                    canon = canonicalize(value)
                    if canon is None:
                        continue
                    add(f"value:{relation}.{attr_name}:{row.row_id}", canon)

    def index_source(self, source: DataSource, include_values: bool = True) -> None:
        """Add every relation of ``source``."""
        for table in source:
            self.index_table(table, include_values=include_values)

    def remove_table(self, relation: str) -> None:
        """Drop every document contributed by ``relation``."""
        for doc_id in self._relation_documents.pop(relation, set()):
            self.remove_document(doc_id)

    def remove_source(self, source_name: str) -> None:
        """Drop every document contributed by any relation of ``source_name``."""
        prefix = f"{source_name}."
        for relation in [r for r in self._relation_documents if r.startswith(prefix)]:
            self.remove_table(relation)

    @classmethod
    def from_catalog(cls, catalog: Catalog, include_values: bool = True) -> "TokenIndex":
        """Index all schema labels (and optionally values) in ``catalog``."""
        index = cls()
        for source in catalog:
            index.index_source(source, include_values=include_values)
        return index
