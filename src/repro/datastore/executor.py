"""Execution of conjunctive queries and ranked disjoint unions.

The executor implements the "View Creation & Output" stage of the paper's
architecture (Figure 1): each Steiner tree's conjunctive query is executed
against the catalog, the per-query outputs are combined by a *disjoint
("outer") union* whose columns are aligned across queries, and answers are
returned in increasing order of cost with provenance annotations.

:class:`QueryExecutor` is now a thin facade: by default it delegates to the
planned, indexed engine (:mod:`repro.engine`), which chooses join orders by
cardinality and caches scans/join indexes in a shared
:class:`~repro.engine.context.ExecutionContext`.  The seed nested-join
implementation is preserved behind ``use_engine=False`` as the reference
semantics the engine is parity-tested against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import QueryError
from ..similarity.tokenize import tokenize
from .database import Catalog
from .provenance import AnswerTuple, TupleProvenance
from .query import ConjunctiveQuery, SelectionPredicate
from .table import Row, Table
from .types import canonicalize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..engine.context import ExecutionContext
    from ..engine.executor import PlanExecutor


class _PartialResult:
    """Intermediate join result: one row per joined combination of base tuples."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Dict[str, Row]) -> None:
        # alias -> Row
        self.bindings = bindings

    def extended(self, alias: str, row: Row) -> "_PartialResult":
        new_bindings = dict(self.bindings)
        new_bindings[alias] = row
        return _PartialResult(new_bindings)


def _selection_matches(predicate: SelectionPredicate, value) -> bool:
    """Evaluate a selection predicate against one cell value."""
    canon = canonicalize(value)
    if canon is None:
        return False
    needle = predicate.value
    if predicate.mode == "equals":
        return canon == canonicalize(needle)
    if predicate.mode == "contains":
        return str(needle).lower() in canon.lower()
    # keyword mode: all needle tokens appear among the value tokens
    value_tokens = set(tokenize(canon))
    needle_tokens = tokenize(needle)
    if not needle_tokens:
        return False
    return all(token in value_tokens for token in needle_tokens)


class QueryExecutor:
    """Executes conjunctive queries against a :class:`~repro.datastore.database.Catalog`.

    Parameters
    ----------
    catalog:
        The catalog queries run against.
    context:
        Optional shared :class:`~repro.engine.context.ExecutionContext`; pass
        one to share scan/join-index caches across executors (the Q system
        shares a single context across all of its views).
    use_engine:
        When ``True`` (the default) execution is delegated to the planned,
        indexed engine.  ``False`` selects the seed nested-join reference
        implementation, kept for parity testing.
    """

    def __init__(
        self,
        catalog: Catalog,
        context: Optional["ExecutionContext"] = None,
        use_engine: bool = True,
    ) -> None:
        self.catalog = catalog
        self.engine: Optional["PlanExecutor"] = None
        if use_engine:
            from ..engine.executor import PlanExecutor

            self.engine = PlanExecutor(catalog, context)

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveQuery, limit: Optional[int] = None) -> List[AnswerTuple]:
        """Execute one conjunctive query; returns answers with provenance.

        With the engine enabled, the query is compiled to a plan (selection
        pushdown, greedy join order, cached hash-join indexes).  The
        reference path evaluates joins left-to-right over the atom list with
        hash joins on canonicalized values, applying selection predicates as
        soon as their alias is bound.  Both paths produce identical answers.
        """
        if self.engine is not None:
            return self.engine.execute(query, limit=limit)
        query.validate()
        alias_tables = self._resolve_tables(query)
        selections_by_alias: Dict[str, List[SelectionPredicate]] = {}
        for predicate in query.selections:
            selections_by_alias.setdefault(predicate.alias, []).append(predicate)

        partials: List[_PartialResult] = [_PartialResult({})]
        for atom in query.atoms:
            table = alias_tables[atom.alias]
            candidate_rows = self._filter_rows(table, selections_by_alias.get(atom.alias, []))
            partials = self._join_step(partials, atom.alias, candidate_rows, query)
            if limit is not None and len(partials) > 100000:
                # Safety valve against pathological cross products.
                partials = partials[:100000]
            if not partials:
                return []

        answers = [self._to_answer(query, partial) for partial in partials]
        if limit is not None:
            answers = answers[:limit]
        return answers

    def _resolve_tables(self, query: ConjunctiveQuery) -> Dict[str, Table]:
        tables: Dict[str, Table] = {}
        for atom in query.atoms:
            tables[atom.alias] = self.catalog.relation(atom.relation)
        return tables

    @staticmethod
    def _filter_rows(table: Table, predicates: Sequence[SelectionPredicate]) -> List[Row]:
        if not predicates:
            return list(table.scan())
        rows: List[Row] = []
        for row in table.scan():
            if all(_selection_matches(p, row[p.attribute]) for p in predicates):
                rows.append(row)
        return rows

    @staticmethod
    def _applicable_joins(
        query: ConjunctiveQuery, new_alias: str, bound: Set[str]
    ) -> List:
        applicable = []
        for join in query.joins:
            if join.left_alias == new_alias and join.right_alias in bound:
                applicable.append(join.reversed())
            elif join.right_alias == new_alias and join.left_alias in bound:
                applicable.append(join)
        return applicable

    def _join_step(
        self,
        partials: List[_PartialResult],
        alias: str,
        rows: List[Row],
        query: ConjunctiveQuery,
    ) -> List[_PartialResult]:
        if not partials:
            return []
        bound = set(partials[0].bindings.keys())
        joins = self._applicable_joins(query, alias, bound)
        if not joins:
            # Cross product with the new atom (happens for the first atom,
            # or when the query tree is connected only through later atoms).
            return [partial.extended(alias, row) for partial in partials for row in rows]

        # Hash the new rows on the canonical values of the joined attributes.
        key_attrs = [join.right_attribute for join in joins]
        hashed: Dict[Tuple, List[Row]] = {}
        for row in rows:
            key = tuple(canonicalize(row[attr]) for attr in key_attrs)
            if any(part is None for part in key):
                continue
            hashed.setdefault(key, []).append(row)

        result: List[_PartialResult] = []
        for partial in partials:
            key_parts = []
            valid = True
            for join in joins:
                left_row = partial.bindings[join.left_alias]
                canon = canonicalize(left_row[join.left_attribute])
                if canon is None:
                    valid = False
                    break
                key_parts.append(canon)
            if not valid:
                continue
            for row in hashed.get(tuple(key_parts), ()):
                result.append(partial.extended(alias, row))
        return result

    def _to_answer(self, query: ConjunctiveQuery, partial: _PartialResult) -> AnswerTuple:
        alias_map = query.alias_map()
        outputs = query.outputs
        if not outputs:
            values: Dict[str, Optional[object]] = {}
            for atom in query.atoms:
                row = partial.bindings[atom.alias]
                for attr, value in zip(row.schema.attribute_names, row.values):
                    values[f"{atom.alias}.{attr}"] = value
        else:
            values = {}
            for column in outputs:
                row = partial.bindings[column.alias]
                values[column.label] = row[column.attribute]
        base_tuples = frozenset(
            (alias_map[alias], row.row_id) for alias, row in partial.bindings.items()
        )
        provenance = TupleProvenance(
            query_id=query.provenance or "query",
            query_cost=query.cost,
            base_tuples=base_tuples,
        )
        return AnswerTuple(values=values, cost=query.cost, provenance=provenance)

    # ------------------------------------------------------------------
    # Ranked disjoint union
    # ------------------------------------------------------------------
    def execute_union(
        self,
        queries: Sequence[ConjunctiveQuery],
        compatible: Optional[Callable[[str, str], bool]] = None,
        limit: Optional[int] = None,
    ) -> List[AnswerTuple]:
        """Execute a ranked disjoint ("outer") union of queries.

        Queries are executed in increasing cost order.  Output columns of
        later queries are renamed onto columns of the accumulated unified
        schema when ``compatible(label_a, label_b)`` says the attributes are
        conceptually the same (paper Section 2.2); otherwise the column is
        appended as a new unified column.  Every answer is padded with
        ``None`` for the unified columns it does not populate.

        Parameters
        ----------
        queries:
            The per-tree conjunctive queries.
        compatible:
            Optional predicate over output labels implementing the
            similarity-edge-below-threshold test of the paper; defaults to
            exact label equality of the trailing attribute name.
        limit:
            Optional cap on the number of answers returned.
        """
        if self.engine is not None:
            return self.engine.execute_union(queries, compatible=compatible, limit=limit)
        if compatible is None:
            compatible = _default_column_compatibility

        ordered = sorted(queries, key=lambda q: q.cost)
        unified_columns: List[str] = []
        all_answers: List[AnswerTuple] = []
        for query in ordered:
            column_mapping = self._align_columns(query, unified_columns, compatible)
            answers = self.execute(query)
            for answer in answers:
                remapped: Dict[str, Optional[object]] = {}
                for label, value in answer.values.items():
                    remapped[column_mapping.get(label, label)] = value
                answer.values = remapped
            all_answers.extend(answers)

        # Pad every answer to the unified schema.
        for answer in all_answers:
            for column in unified_columns:
                answer.values.setdefault(column, None)

        all_answers.sort(key=lambda a: a.cost)
        if limit is not None:
            all_answers = all_answers[:limit]
        return all_answers

    @staticmethod
    def _align_columns(
        query: ConjunctiveQuery,
        unified_columns: List[str],
        compatible: Callable[[str, str], bool],
    ) -> Dict[str, str]:
        """Compute a label remapping for ``query`` onto the unified schema.

        Mutates ``unified_columns`` in place, appending new columns as
        needed, and returns an original-label -> unified-label mapping.
        """
        mapping: Dict[str, str] = {}
        labels = query.output_labels() or ()
        used_unified: Set[str] = set()
        for label in labels:
            target: Optional[str] = None
            if label in unified_columns and label not in used_unified:
                target = label
            else:
                for candidate in unified_columns:
                    if candidate in used_unified:
                        continue
                    if compatible(label, candidate):
                        target = candidate
                        break
            if target is None:
                unified_columns.append(label)
                target = label
            used_unified.add(target)
            mapping[label] = target
        return mapping


def _default_column_compatibility(label_a: str, label_b: str) -> bool:
    """Default compatibility: the trailing attribute names match exactly."""
    return label_a.split(".")[-1] == label_b.split(".")[-1]
