"""Answer provenance.

Every answer tuple produced by the executor is annotated with provenance:
the query that produced it and the identifiers of the base tuples it was
assembled from.  Provenance is what lets the learning component generalize
feedback on a *tuple* into feedback on the *query tree* that produced it
(paper Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class TupleProvenance:
    """Provenance of one answer tuple.

    Attributes
    ----------
    query_id:
        Identifier of the conjunctive query (and hence of the Steiner tree)
        that produced the answer.
    query_cost:
        Cost of the producing query at execution time.
    base_tuples:
        The set of ``(qualified_relation, row_id)`` pairs joined to form the
        answer.
    tree_edges:
        The identifiers of search-graph edges used by the producing query's
        Steiner tree.  This is what the MIRA learner constrains.
    """

    query_id: str
    query_cost: float
    base_tuples: FrozenSet[Tuple[str, int]] = frozenset()
    tree_edges: FrozenSet[str] = frozenset()

    def involves_relation(self, relation: str) -> bool:
        """Whether any base tuple comes from ``relation``."""
        return any(rel == relation for rel, _ in self.base_tuples)


@dataclass
class AnswerTuple:
    """A ranked answer in the unified output table.

    Attributes
    ----------
    values:
        Mapping from unified output column label to value (``None`` for
        columns this answer's originating query does not populate).
    cost:
        The answer's cost (equal to its originating query's cost, since
        per-tuple similarity predicates are not used — see Section 2.2).
    provenance:
        The :class:`TupleProvenance` of the answer.
    """

    values: Dict[str, Optional[object]] = field(default_factory=dict)
    cost: float = 0.0
    provenance: Optional[TupleProvenance] = None

    def __getitem__(self, column: str):
        return self.values[column]

    def get(self, column: str, default=None):
        """Mapping-style access with a default."""
        return self.values.get(column, default)

    def columns(self) -> Tuple[str, ...]:
        """Output column labels present in this answer."""
        return tuple(self.values.keys())

    def key(self) -> Tuple:
        """A hashable identity for the answer (used when applying feedback)."""
        prov_key: Tuple = ()
        if self.provenance is not None:
            prov_key = (self.provenance.query_id, tuple(sorted(self.provenance.base_tuples)))
        return (tuple(sorted((k, str(v)) for k, v in self.values.items() if v is not None)), prov_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        populated = {k: v for k, v in self.values.items() if v is not None}
        return f"AnswerTuple(cost={self.cost:.3f}, values={populated!r})"
