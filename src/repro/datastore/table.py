"""In-memory tuple storage for relations.

A :class:`Table` couples a :class:`~repro.datastore.schema.RelationSchema`
with row storage and per-attribute value statistics.  Tables are the
instance-level substrate for:

* keyword-to-value matching when expanding a query graph (paper Section 2.2),
* the MAD column-value graph (paper Section 3.2.2),
* the value-overlap filter used in the Figure 7 experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import DataError
from .schema import RelationSchema
from .types import ValueType, canonicalize, infer_column_type


class Row:
    """A single tuple of a table, addressable by attribute name or index.

    ``Row`` is deliberately lightweight: it stores a reference to the table
    schema plus a value tuple, and provides mapping-style access.
    """

    __slots__ = ("schema", "values", "row_id")

    def __init__(self, schema: RelationSchema, values: Tuple[Any, ...], row_id: int) -> None:
        self.schema = schema
        self.values = values
        self.row_id = row_id

    def __getitem__(self, key) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.attribute_index(key)]

    def get(self, key: str, default: Any = None) -> Any:
        """Mapping-style ``get`` by attribute name."""
        if self.schema.has_attribute(key):
            return self[key]
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Return the row as an ``{attribute: value}`` dict."""
        return dict(zip(self.schema.attribute_names, self.values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values and self.schema is other.schema
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row({self.as_dict()!r})"


class Table:
    """A relation schema plus its stored tuples.

    Parameters
    ----------
    schema:
        The relation schema describing column names and types.
    rows:
        Optional initial rows; each row may be a mapping from attribute name
        to value or a positional sequence.
    """

    def __init__(self, schema: RelationSchema, rows: Optional[Iterable] = None) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._distinct_cache: Dict[str, Set[str]] = {}
        #: Monotonically increasing data version, bumped on every mutation.
        #: External caches (e.g. the engine's join indexes) key on it so
        #: that stale entries are detected without explicit invalidation.
        self.version = 0
        if rows is not None:
            self.extend(rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, row) -> Row:
        """Append a single row (mapping or sequence) and return the stored Row."""
        values = self._coerce(row)
        stored = Row(self.schema, values, len(self._rows))
        self._rows.append(stored)
        self._distinct_cache.clear()
        self.version += 1
        return stored

    def extend(self, rows: Iterable) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    def _coerce(self, row) -> Tuple[Any, ...]:
        names = self.schema.attribute_names
        if isinstance(row, Row):
            row = row.as_dict()
        if isinstance(row, Mapping):
            unknown = set(row) - set(names)
            if unknown:
                raise DataError(
                    f"row has attributes {sorted(unknown)!r} not in relation "
                    f"{self.schema.qualified_name!r}"
                )
            return tuple(row.get(name) for name in names)
        if isinstance(row, Sequence) and not isinstance(row, (str, bytes)):
            if len(row) != len(names):
                raise DataError(
                    f"row of arity {len(row)} does not match relation "
                    f"{self.schema.qualified_name!r} of arity {len(names)}"
                )
            return tuple(row)
        raise DataError(f"cannot interpret row value of type {type(row).__name__}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> Tuple[Row, ...]:
        """All stored rows as an immutable tuple."""
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def column(self, attribute: str) -> List[Any]:
        """Return all values of ``attribute`` in row order."""
        idx = self.schema.attribute_index(attribute)
        return [row.values[idx] for row in self._rows]

    def distinct_values(self, attribute: str) -> Set[str]:
        """Return the set of canonicalized, non-null values of ``attribute``.

        Results are cached; the cache is invalidated on any mutation.
        """
        cached = self._distinct_cache.get(attribute)
        if cached is not None:
            return cached
        values: Set[str] = set()
        idx = self.schema.attribute_index(attribute)
        for row in self._rows:
            canon = canonicalize(row.values[idx])
            if canon is not None:
                values.add(canon)
        self._distinct_cache[attribute] = values
        return values

    def inferred_column_type(self, attribute: str) -> ValueType:
        """Infer the dominant value type of ``attribute`` from stored data."""
        return infer_column_type(self.column(attribute))

    def value_overlap(self, attribute: str, other: "Table", other_attribute: str) -> int:
        """Number of distinct canonical values shared with another column."""
        return len(self.distinct_values(attribute) & other.distinct_values(other_attribute))

    # ------------------------------------------------------------------
    # Simple relational operations (used by the executor and tests)
    # ------------------------------------------------------------------
    def select(self, predicate) -> "Table":
        """Return a new table containing rows for which ``predicate(row)`` holds."""
        result = Table(self.schema)
        for row in self._rows:
            if predicate(row):
                result.append(row.as_dict())
        return result

    def project(self, attributes: Sequence[str]) -> "Table":
        """Return a new table with only the given attributes (duplicates kept)."""
        new_schema = RelationSchema(
            self.schema.name,
            [self.schema.attribute(a) for a in attributes],
            source=self.schema.source,
        )
        result = Table(new_schema)
        for row in self._rows:
            result.append({a: row[a] for a in attributes})
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.qualified_name!r}, rows={len(self._rows)})"
