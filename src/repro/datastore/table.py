"""Relation facade over pluggable tuple storage.

A :class:`Table` couples a :class:`~repro.datastore.schema.RelationSchema`
with row storage owned by a :class:`~repro.storage.base.StorageBackend` and
per-attribute value statistics.  Tables are the instance-level substrate for:

* keyword-to-value matching when expanding a query graph (paper Section 2.2),
* the MAD column-value graph (paper Section 3.2.2),
* the value-overlap filter used in the Figure 7 experiment.

Storage is delegated, never embedded: a table created on its own owns a
private :class:`~repro.storage.memory.MemoryBackend` (behaviorally identical
to the seed's in-object row list), while a table admitted to a backend-bound
:class:`~repro.datastore.database.Catalog` is *attached* — its rows migrate
into the catalog's backend (one bulk ingest) and every subsequent operation
routes there.  No layer above :mod:`repro.storage` touches physical row
storage directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import DataError
from .schema import RelationSchema
from .types import ValueType, infer_column_type


class Row:
    """A single tuple of a table, addressable by attribute name or index.

    ``Row`` is deliberately lightweight: it stores a reference to the table
    schema plus a value tuple, and provides mapping-style access.
    """

    __slots__ = ("schema", "values", "row_id")

    def __init__(self, schema: RelationSchema, values: Tuple[Any, ...], row_id: int) -> None:
        self.schema = schema
        self.values = values
        self.row_id = row_id

    def __getitem__(self, key) -> Any:
        if isinstance(key, int):
            return self.values[key]
        return self.values[self.schema.attribute_index(key)]

    def get(self, key: str, default: Any = None) -> Any:
        """Mapping-style ``get`` by attribute name."""
        if self.schema.has_attribute(key):
            return self[key]
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Return the row as an ``{attribute: value}`` dict."""
        return dict(zip(self.schema.attribute_names, self.values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.values == other.values and self.schema is other.schema
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row({self.as_dict()!r})"


def _default_backend():
    from ..storage.memory import MemoryBackend

    return MemoryBackend()


class Table:
    """A relation schema plus its stored tuples.

    Parameters
    ----------
    schema:
        The relation schema describing column names and types.
    rows:
        Optional initial rows; each row may be a mapping from attribute name
        to value or a positional sequence.
    backend:
        Storage backend holding the rows.  Defaults to a private
        :class:`~repro.storage.memory.MemoryBackend`.
    adopt:
        When ``True``, the relation already exists on ``backend`` (a
        reopened persistent catalog) and is adopted instead of created —
        its stored rows become this table's contents.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable] = None,
        backend=None,
        adopt: bool = False,
    ) -> None:
        self.schema = schema
        self._backend = backend if backend is not None else _default_backend()
        self._key = schema.qualified_name
        if adopt:
            self._backend.bind_schema(self._key, schema)
        else:
            self._backend.create_relation(self._key, schema)
        if rows is not None:
            self.extend(rows)

    # ------------------------------------------------------------------
    # Storage binding
    # ------------------------------------------------------------------
    @property
    def storage_backend(self):
        """The :class:`~repro.storage.base.StorageBackend` holding the rows."""
        return self._backend

    @property
    def storage_key(self) -> str:
        """The relation's key on its backend (its qualified name at bind time)."""
        return self._key

    def attach(self, backend) -> None:
        """Migrate this table's rows onto ``backend`` (one bulk ingest).

        Used when a source is admitted to a backend-bound catalog: the rows
        move, the table is re-keyed under its *current* qualified name, and
        the version counter carries forward (strictly increased) so engine
        caches keyed on ``(table, version)`` can never alias across the
        move.  No-op when already attached to ``backend``.
        """
        if backend is self._backend:
            return
        old_backend, old_key = self._backend, self._key
        key = self.schema.qualified_name
        backend.create_relation(
            key, self.schema, initial_version=old_backend.version(old_key) + 1
        )
        try:
            backend.insert_rows(key, (row.values for row in old_backend.scan(old_key)))
        except Exception:
            backend.drop_relation(key)
            raise
        self._backend, self._key = backend, key
        old_backend.drop_relation(old_key)

    def detach(self) -> None:
        """Move the rows back onto a fresh private memory backend.

        The inverse of :meth:`attach`, used when a source is removed from a
        backend-bound catalog (e.g. the registration rollback path): the
        catalog's backend must not keep the failed source's data, but the
        caller still holds a fully functional table.
        """
        self.attach(_default_backend())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, row) -> Row:
        """Append a single row (mapping or sequence) and return the stored Row."""
        return self._backend.append_row(self._key, self._coerce(row))

    def extend(self, rows: Iterable) -> None:
        """Bulk-append rows: one atomic backend ingest, one version bump.

        ``rows`` may be a generator; it is coerced and consumed lazily, so
        streaming loaders (CSV batches) never materialize whole files.
        """
        self._backend.insert_rows(self._key, (self._coerce(row) for row in rows))

    def _coerce(self, row) -> Tuple[Any, ...]:
        names = self.schema.attribute_names
        if isinstance(row, Row):
            row = row.as_dict()
        if isinstance(row, Mapping):
            unknown = set(row) - set(names)
            if unknown:
                raise DataError(
                    f"row has attributes {sorted(unknown)!r} not in relation "
                    f"{self.schema.qualified_name!r}"
                )
            return tuple(row.get(name) for name in names)
        if isinstance(row, Sequence) and not isinstance(row, (str, bytes)):
            if len(row) != len(names):
                raise DataError(
                    f"row of arity {len(row)} does not match relation "
                    f"{self.schema.qualified_name!r} of arity {len(names)}"
                )
            return tuple(row)
        raise DataError(f"cannot interpret row value of type {type(row).__name__}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing data version (bumped on every mutation).

        External caches (e.g. the engine's join indexes) key on it so that
        stale entries are detected without explicit invalidation.
        """
        return self._backend.version(self._key)

    def scan(self) -> Sequence[Row]:
        """All stored rows in insertion (row-id) order, via the backend.

        The canonical read path for bulk consumers (profiling, indexing,
        the engine's scan cache).  The returned sequence is owned by the
        backend — callers must not mutate it.
        """
        return self._backend.scan(self._key)

    @property
    def rows(self) -> Tuple[Row, ...]:
        """All stored rows as an immutable tuple."""
        return tuple(self._backend.scan(self._key))

    def __len__(self) -> int:
        return self._backend.row_count(self._key)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._backend.scan(self._key))

    def __getitem__(self, index: int) -> Row:
        return self._backend.scan(self._key)[index]

    def column(self, attribute: str) -> List[Any]:
        """Return all values of ``attribute`` in row order."""
        idx = self.schema.attribute_index(attribute)
        return [row.values[idx] for row in self._backend.scan(self._key)]

    def distinct_values(self, attribute: str) -> Set[str]:
        """Return the set of canonicalized, non-null values of ``attribute``.

        Served by the backend (cached in memory; ``SELECT DISTINCT`` under
        SQLite), invalidated naturally on mutation.
        """
        self.schema.attribute_index(attribute)  # validates existence
        return self._backend.distinct_values(self._key, attribute)

    def inferred_column_type(self, attribute: str) -> ValueType:
        """Infer the dominant value type of ``attribute`` from stored data."""
        return infer_column_type(self.column(attribute))

    def value_overlap(self, attribute: str, other: "Table", other_attribute: str) -> int:
        """Number of distinct canonical values shared with another column."""
        return len(self.distinct_values(attribute) & other.distinct_values(other_attribute))

    # ------------------------------------------------------------------
    # Simple relational operations (used by the executor and tests)
    # ------------------------------------------------------------------
    def select(self, predicate) -> "Table":
        """Return a new table containing rows for which ``predicate(row)`` holds."""
        result = Table(self.schema)
        result.extend(row.as_dict() for row in self if predicate(row))
        return result

    def project(self, attributes: Sequence[str]) -> "Table":
        """Return a new table with only the given attributes (duplicates kept)."""
        new_schema = RelationSchema(
            self.schema.name,
            [self.schema.attribute(a) for a in attributes],
            source=self.schema.source,
        )
        result = Table(new_schema)
        result.extend({a: row[a] for a in attributes} for row in self)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.schema.qualified_name!r}, rows={len(self)})"
