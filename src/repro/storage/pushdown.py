"""Whole-query SQL pushdown for SQLite-backed catalogs.

When every relation of a conjunctive query lives on the catalog's
:class:`~repro.storage.sqlite.SqliteBackend`, the engine does not need to
scan, hash and join in Python at all: the query *is* a conjunctive SQL
statement (the paper's own formulation, Section 2.2), so it is compiled to
one parameterized SELECT and executed inside SQLite.

Parity is guaranteed by construction rather than by approximation:

* join conditions compare ``repro_canon(left) = repro_canon(right)`` — the
  library's canonicalize function registered with the database — so exactly
  the tuples the Python hash join matches are matched (nulls never join:
  ``NULL = NULL`` is not true in SQL);
* selections go through :func:`repro.datastore.sqlgen.selection_condition`
  in its *exact* dialect (``repro_match(?, ?, column) = 1``), the same
  semantics as :meth:`~repro.engine.predicates.CompiledPredicate.matches`;
* the result is ordered by the base tuples' row ids along the query's atom
  list — precisely the deterministic emission order of
  :meth:`~repro.engine.executor.PlanExecutor.execute`;
* self-joins binding one alias to itself are dropped, as the planner does.

Anything the compiler cannot push — a relation stored on a different
backend, a ``limit`` (whose 100k-partial safety valve is engine-specific) —
falls back to the Python join engine per query fragment; the per-relation
*scan* pushdown (:meth:`SqliteBackend.scan_where`) still applies there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..datastore.provenance import AnswerTuple, TupleProvenance
from ..datastore.sqlgen import SQLITE_DIALECT, PushdownDialect, selection_condition
from .sqlite import SqliteBackend, quote_identifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datastore.database import Catalog
    from ..datastore.query import ConjunctiveQuery


def backend_dialect(backend) -> PushdownDialect:
    """The backend's :class:`PushdownDialect` (SQLite spelling by default)."""
    return getattr(backend, "sql_dialect", SQLITE_DIALECT)


def relation_of(query: "ConjunctiveQuery", alias: str) -> str:
    """The relation an atom alias is bound to."""
    for atom in query.atoms:
        if atom.alias == alias:
            return atom.relation
    raise KeyError(alias)  # pragma: no cover - validate() guarantees binding


def relations_on_backend(backend, catalog: "Catalog", query: "ConjunctiveQuery") -> bool:
    """Whether every relation of ``query`` is stored on ``backend``.

    The shared eligibility core of the whole-query and windowed-union
    pushdowns: a query touching a foreign-backend relation (or a table
    whose storage key diverged from its catalog name) must fall back to the
    Python engine.
    """
    if not query.atoms:
        return False
    for atom in query.atoms:
        try:
            table = catalog.relation(atom.relation)
        except Exception:
            return False
        if table.storage_backend is not backend or table.storage_key != atom.relation:
            return False
    return True


def compile_query_body(
    backend, query: "ConjunctiveQuery", params: List[object]
) -> Tuple[List[str], List[str]]:
    """FROM items and WHERE conditions of one conjunctive query.

    The single compiler of a query's relational body, shared by the
    whole-query pushdown (:class:`SqlPushdown`) and every branch of the
    windowed ranked union (:mod:`repro.storage.windowed`) — parity of the
    two paths rests on them rendering identical join/selection semantics.
    Join conditions compare canonical forms via the backend dialect's canon
    function; selections render in the *exact* dialect; selection needles
    are appended to ``params``.  As a side effect the backend's canonical
    expression indexes are ensured on every join column and every
    equals-selection column.
    """
    dialect = backend_dialect(backend)
    from_items = [
        f"{backend.table_sql_name(atom.relation)} AS {quote_identifier(atom.alias)}"
        for atom in query.atoms
    ]
    conditions: List[str] = []
    for join in query.joins:
        if join.left_alias == join.right_alias:
            continue  # planner semantics: self-joins on one alias are dropped
        left = (
            f"{quote_identifier(join.left_alias)}."
            f"{backend.column_sql_name(join.left_attribute)}"
        )
        right = (
            f"{quote_identifier(join.right_alias)}."
            f"{backend.column_sql_name(join.right_attribute)}"
        )
        conditions.append(f"{dialect.canon(left)} = {dialect.canon(right)}")
        backend.ensure_canon_index(
            relation_of(query, join.right_alias), join.right_attribute
        )
        backend.ensure_canon_index(
            relation_of(query, join.left_alias), join.left_attribute
        )
    for selection in query.selections:
        column = (
            f"{quote_identifier(selection.alias)}."
            f"{backend.column_sql_name(selection.attribute)}"
        )
        conditions.append(
            selection_condition(
                selection, column, params, dialect="exact", functions=dialect
            )
        )
        if selection.mode == "equals":
            backend.ensure_canon_index(
                relation_of(query, selection.alias), selection.attribute
            )
    return from_items, conditions


class SqlPushdown:
    """Compiles and runs whole conjunctive queries on a SQLite backend."""

    def __init__(self, backend: SqliteBackend) -> None:
        self.backend = backend
        #: How many queries were answered fully inside SQLite (benchmarks
        #: and tests read this).
        self.queries_executed = 0

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def can_execute(
        self, catalog: "Catalog", query: "ConjunctiveQuery", limit: Optional[int]
    ) -> bool:
        """Whether the whole query can run inside the backend.

        ``limit`` forces a fallback: with a limit the engine's pathological
        cross-product valve may truncate mid-join, a behavior the SQL path
        intentionally does not replicate.
        """
        if limit is not None:
            return False
        return relations_on_backend(self.backend, catalog, query)

    # ------------------------------------------------------------------
    # Compilation + execution
    # ------------------------------------------------------------------
    def execute(self, catalog: "Catalog", query: "ConjunctiveQuery") -> List[AnswerTuple]:
        """Run ``query`` as one parameterized SELECT; answers carry provenance."""
        query.validate()
        schemas = {
            atom.alias: catalog.relation(atom.relation).schema for atom in query.atoms
        }

        select_items: List[str] = []
        slices: List[Tuple[str, int]] = []  # (alias, cell count) per atom
        for atom in query.atoms:
            alias_sql = quote_identifier(atom.alias)
            names = schemas[atom.alias].attribute_names
            select_items.append(f'{alias_sql}."_row_id"')
            select_items.append(f'{alias_sql}."_tags"')
            select_items.extend(
                f"{alias_sql}.{self.backend.column_sql_name(name)}" for name in names
            )
            slices.append((atom.alias, 2 + len(names)))

        params: List[object] = []
        from_items, conditions = compile_query_body(self.backend, query, params)

        order_by = ", ".join(
            f'{quote_identifier(atom.alias)}."_row_id"' for atom in query.atoms
        )
        sql = f"SELECT {', '.join(select_items)}\nFROM {', '.join(from_items)}"
        if conditions:
            sql += "\nWHERE " + " AND ".join(conditions)
        sql += f"\nORDER BY {order_by}"

        fetched = self.backend.execute_sql(sql, params)
        self.queries_executed += 1
        return [self._to_answer(query, schemas, slices, record) for record in fetched]

    # ------------------------------------------------------------------
    # Answer construction (mirrors PlanExecutor._to_answer)
    # ------------------------------------------------------------------
    def _to_answer(
        self,
        query: "ConjunctiveQuery",
        schemas: Dict[str, object],
        slices: Sequence[Tuple[str, int]],
        record: Sequence[object],
    ) -> AnswerTuple:
        decode = SqliteBackend._decode_values
        bound: Dict[str, Tuple[int, Tuple[object, ...]]] = {}
        offset = 0
        for alias, width in slices:
            row_id, tags = record[offset], record[offset + 1]
            values = decode(record[offset + 2 : offset + width], tags)
            bound[alias] = (row_id, values)
            offset += width

        if not query.outputs:
            values_out: Dict[str, object] = {}
            for atom in query.atoms:
                _, cells = bound[atom.alias]
                for attr, value in zip(schemas[atom.alias].attribute_names, cells):
                    values_out[f"{atom.alias}.{attr}"] = value
        else:
            values_out = {}
            for column in query.outputs:
                _, cells = bound[column.alias]
                index = schemas[column.alias].attribute_index(column.attribute)
                values_out[column.label] = cells[index]

        base_tuples = frozenset(
            (atom.relation, bound[atom.alias][0]) for atom in query.atoms
        )
        provenance = TupleProvenance(
            query_id=query.provenance or "query",
            query_cost=query.cost,
            base_tuples=base_tuples,
        )
        return AnswerTuple(values=values_out, cost=query.cost, provenance=provenance)
