"""Pluggable relation storage: the swappable bottom layer of the stack.

See :mod:`repro.storage.base` for the :class:`StorageBackend` protocol
contract (scan ordering, canonicalization, ingest atomicity, versioning).

Backend selection guide
-----------------------
* :class:`MemoryBackend` (``"memory"``, the default) — Python-list rows,
  no dependencies, fastest for catalogs that fit comfortably in RAM.
* :class:`SqliteBackend` (``"sqlite"``) — one SQLite database per catalog.
  Pass a file path for datasets larger than RAM or sessions that must
  survive a restart (``Catalog``/``QService`` reconstruct themselves from
  the file), or ``":memory:"`` for an ephemeral database that still gets
  SQL pushdown and bulk ``executemany`` ingest.
* :class:`PostgresBackend` (``"postgres:<dsn>"``) — the same row model on
  a PostgreSQL server through psycopg2 (a soft dependency: construction
  fails with a clear :class:`StorageError` when the driver is absent).
  No SQL pushdown — the library's canon/match functions are not installed
  server-side — so reads fall back to the Python engine by construction;
  posting tables still persist.  :class:`DbApiBackend` is the generic
  DB-API 2.0 core it is built on, usable directly with any conforming
  driver connection.

The ``REPRO_BACKEND`` environment variable switches the *default* backend
of every :class:`~repro.datastore.database.Catalog` created without an
explicit one — the hook the CI matrix uses to run the whole tier-1 suite
against both implementations.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from ..exceptions import StorageError
from .base import PredicateSpec, StorageBackend
from .dbapi import DbApiBackend, PostgresBackend
from .memory import MemoryBackend
from .sqlite import SqliteBackend

#: Accepted spellings of a backend choice.
BackendSpec = Union[None, str, StorageBackend]

_ENV_VAR = "REPRO_BACKEND"


def create_backend(kind: str, path: Optional[str] = None) -> StorageBackend:
    """Instantiate a backend by name (``"memory"``, ``"sqlite"``, ``"postgres"``).

    ``"sqlite"`` accepts an optional database ``path`` (default
    ``":memory:"``); a spec of the form ``"sqlite:<path>"`` is also
    understood so the choice can live in a single string (CLI flags, env).
    ``"postgres:<dsn>"`` connects through psycopg2 (which must be
    installed) with the DSN everything after the first colon.
    """
    if kind.startswith("sqlite:"):
        kind, path = "sqlite", kind.split(":", 1)[1]
    if kind.startswith("postgres:"):
        kind, path = "postgres", kind.split(":", 1)[1]
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SqliteBackend(path or ":memory:")
    if kind == "postgres":
        if not path:
            raise StorageError(
                'the postgres backend needs a DSN: use "postgres:<dsn>"'
            )
        return PostgresBackend(path)
    raise StorageError(
        f"unknown storage backend {kind!r}; "
        "valid backends: memory, sqlite, postgres:<dsn>"
    )


def resolve_backend(spec: BackendSpec) -> Optional[StorageBackend]:
    """Normalize a backend spec: ``None`` | name string | live instance."""
    if spec is None or isinstance(spec, StorageBackend):
        return spec
    return create_backend(spec)


def backend_from_env() -> Optional[StorageBackend]:
    """A fresh backend per the ``REPRO_BACKEND`` env var, or ``None``.

    ``""``/unset/``"memory"`` mean "no catalog-level backend" — every table
    keeps its private in-memory storage, the seed behavior.  Each call
    returns a *new* instance so concurrently created catalogs never share
    one ``:memory:`` database by accident.
    """
    spec = os.environ.get(_ENV_VAR, "").strip()
    if not spec or spec == "memory":
        return None
    return create_backend(spec)


__all__ = [
    "BackendSpec",
    "DbApiBackend",
    "MemoryBackend",
    "PostgresBackend",
    "PredicateSpec",
    "SqliteBackend",
    "StorageBackend",
    "StorageError",
    "backend_from_env",
    "create_backend",
    "resolve_backend",
]
