"""Backend-persisted posting lists and tf-idf vectors of the profile index.

The :class:`~repro.profiling.index.CatalogProfileIndex` derives three kinds
of read-side state from its attribute profiles: distinct-value posting
lists (value → attributes containing it), token posting lists with document
frequencies, and L2-normalized content tf-idf vectors.  On a posting-capable
backend (``supports_posting_tables``) this module persists all three as
plain tables inside the catalog database::

    _repro_postings_values (value, relation, attribute)
    _repro_postings_tokens (token, relation, attribute)
    _repro_postings_tfidf  (relation, attribute, token, weight)
    _repro_postings_meta   (key, value)          -- epoch, attribute_count

which buys two things:

* **Warm opens skip the in-memory posting rebuild.**  A restored index
  installs profiles only; posting reads are served by indexed SQL against
  these tables for as long as the saved ``(epoch, attribute_count)`` meta
  matches the live index — the index's ``posting_builds`` counter stays 0.
* **Candidate intersection pushes down as an indexed join.**  The
  registration-side blocking walk (``value_candidates``) becomes one
  self-join on ``_repro_postings_values(value)`` with a ``GROUP BY`` —
  the backend intersects posting lists instead of Python.

Synchronization is a whole-state rewrite keyed on the index epoch: the
service calls :meth:`PostingStore.sync` after every mutation, which is a
no-op while the meta row is current.  Tf-idf vectors are a write-through
cache — :meth:`~repro.profiling.index.CatalogProfileIndex.content_tfidf`
stores each vector it computes while the store is current, and ``sync``
clears the table whenever the epoch moves (document frequencies changed,
so every vector is invalid).  Parity is exact: weights round-trip as IEEE
doubles through SQLite ``REAL``, and ``ORDER BY token`` (BINARY collation
over UTF-8 = code-point order) reproduces the sorted-token iteration the
in-memory computation uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling.index import CatalogProfileIndex

#: ``(relation, attribute)`` — mirrors :data:`repro.profiling.profiles.AttrId`.
AttrId = Tuple[str, str]

_VALUES = "_repro_postings_values"
_TOKENS = "_repro_postings_tokens"
_TFIDF = "_repro_postings_tfidf"
_META = "_repro_postings_meta"

#: Chunk size for ``IN (...)`` parameter lists (old SQLite builds cap bound
#: variables at 999 per statement).
_IN_CHUNK = 400

#: :meth:`PostingStore.saved_meta` sentinel for "no meta row saved yet".
_NO_META = (-1, -1)


class PostingStore:
    """Posting tables inside a posting-capable storage backend.

    Like the session store, the posting tables live beside the relation
    data but are invisible to the catalog bookkeeping (never recorded in
    ``_repro_relations``).  The store itself is stateless apart from a
    cached copy of the meta row; all currency decisions belong to the
    profile index that owns it.
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        #: How many whole-state rewrites this store performed (0 on a warm
        #: open whose saved tables were already current).
        self.syncs = 0
        self._meta: Optional[Tuple[int, int]] = None
        self._ensure_schema()

    def _ensure_schema(self) -> None:
        self.backend.execute_write_batch(
            [
                (
                    f"CREATE TABLE IF NOT EXISTS {_META} ("
                    "key TEXT PRIMARY KEY, value INTEGER NOT NULL)",
                    (),
                ),
                (
                    f"CREATE TABLE IF NOT EXISTS {_VALUES} ("
                    "value TEXT NOT NULL, relation TEXT NOT NULL, "
                    "attribute TEXT NOT NULL)",
                    (),
                ),
                (
                    f"CREATE TABLE IF NOT EXISTS {_TOKENS} ("
                    "token TEXT NOT NULL, relation TEXT NOT NULL, "
                    "attribute TEXT NOT NULL)",
                    (),
                ),
                (
                    f"CREATE TABLE IF NOT EXISTS {_TFIDF} ("
                    "relation TEXT NOT NULL, attribute TEXT NOT NULL, "
                    "token TEXT NOT NULL, weight REAL NOT NULL, "
                    "PRIMARY KEY (relation, attribute, token))",
                    (),
                ),
                # The self-join of value_candidates probes by value; the
                # per-attribute index serves posting-list enumeration.
                (
                    "CREATE INDEX IF NOT EXISTS ix_repro_postings_values_value "
                    f"ON {_VALUES} (value)",
                    (),
                ),
                (
                    "CREATE INDEX IF NOT EXISTS ix_repro_postings_values_attr "
                    f"ON {_VALUES} (relation, attribute)",
                    (),
                ),
                (
                    "CREATE INDEX IF NOT EXISTS ix_repro_postings_tokens_token "
                    f"ON {_TOKENS} (token)",
                    (),
                ),
                (
                    "CREATE INDEX IF NOT EXISTS ix_repro_postings_tokens_attr "
                    f"ON {_TOKENS} (relation, attribute)",
                    (),
                ),
            ]
        )

    # ------------------------------------------------------------------
    # Currency
    # ------------------------------------------------------------------
    def saved_meta(self) -> Optional[Tuple[int, int]]:
        """The ``(epoch, attribute_count)`` the tables were written at."""
        if self._meta is None:
            entries = dict(
                self.backend.execute_sql(f"SELECT key, value FROM {_META}")
            )
            if "epoch" in entries and "attribute_count" in entries:
                self._meta = (
                    int(entries["epoch"]),
                    int(entries["attribute_count"]),
                )
            else:
                self._meta = _NO_META
        return None if self._meta == _NO_META else self._meta

    def is_current(self, epoch: int, attribute_count: int) -> bool:
        """Whether the saved tables describe exactly this index state."""
        return self.saved_meta() == (epoch, attribute_count)

    # ------------------------------------------------------------------
    # Synchronization (whole-state rewrite, epoch-keyed)
    # ------------------------------------------------------------------
    def sync(self, index: "CatalogProfileIndex") -> bool:
        """Rewrite the posting tables iff ``index`` moved past the saved state.

        Returns whether a rewrite happened.  Rows are written in a
        deterministic order (profile installation order, sorted values and
        tokens) so identical sessions produce identical database files.
        """
        if self.is_current(index.epoch, index.attribute_count):
            return False
        self.backend.execute_write_batch(
            [
                (f"DELETE FROM {_VALUES}", ()),
                (f"DELETE FROM {_TOKENS}", ()),
                (f"DELETE FROM {_TFIDF}", ()),
                (f"DELETE FROM {_META}", ()),
            ]
        )
        value_rows = []
        token_rows = []
        for profile in index.iter_attribute_profiles():
            attr = (profile.relation, profile.attribute)
            value_rows.extend((value,) + attr for value in sorted(profile.distinct_values))
            token_rows.extend((token,) + attr for token in sorted(profile.value_tokens))
        self.backend.execute_write_many(
            f"INSERT INTO {_VALUES} (value, relation, attribute) VALUES (?, ?, ?)",
            value_rows,
        )
        self.backend.execute_write_many(
            f"INSERT INTO {_TOKENS} (token, relation, attribute) VALUES (?, ?, ?)",
            token_rows,
        )
        self.backend.execute_write_batch(
            [
                (
                    f"INSERT INTO {_META} (key, value) VALUES ('epoch', ?)",
                    (index.epoch,),
                ),
                (
                    f"INSERT INTO {_META} (key, value) "
                    "VALUES ('attribute_count', ?)",
                    (index.attribute_count,),
                ),
            ]
        )
        self._meta = (index.epoch, index.attribute_count)
        self.syncs += 1
        return True

    # ------------------------------------------------------------------
    # Posting reads (indexed SQL, semantics identical to the shard walk)
    # ------------------------------------------------------------------
    def value_candidates(self, relation: str, attribute: str) -> Dict[AttrId, int]:
        """Attributes sharing ≥ 1 value with the given one, with shared counts.

        The registration blocking walk as one indexed self-join: each row
        of the attribute's own posting entries probes
        ``ix_repro_postings_values_value``, and the ``GROUP BY`` count per
        co-occurring attribute equals the number of shared distinct values
        — exactly what the in-memory posting walk reports.
        """
        rows = self.backend.execute_sql(
            f"SELECT other.relation, other.attribute, COUNT(*) "
            f"FROM {_VALUES} AS mine JOIN {_VALUES} AS other "
            f"ON other.value = mine.value "
            f"WHERE mine.relation = ? AND mine.attribute = ? "
            f"AND NOT (other.relation = mine.relation "
            f"AND other.attribute = mine.attribute) "
            f"GROUP BY other.relation, other.attribute "
            f"ORDER BY other.relation, other.attribute",
            (relation, attribute),
        )
        return {(rel, attr): int(count) for rel, attr, count in rows}

    def token_postings(self, token: str) -> Tuple[AttrId, ...]:
        """The attributes whose values contain ``token`` (already lowered)."""
        rows = self.backend.execute_sql(
            f"SELECT relation, attribute FROM {_TOKENS} "
            f"WHERE token = ? ORDER BY relation, attribute",
            (token,),
        )
        return tuple((rel, attr) for rel, attr in rows)

    def token_document_frequency(self, token: str) -> int:
        """Number of attributes whose values contain ``token``."""
        rows = self.backend.execute_sql(
            f"SELECT COUNT(*) FROM {_TOKENS} WHERE token = ?", (token,)
        )
        return int(rows[0][0])

    def token_document_frequencies(self, tokens: Sequence[str]) -> Dict[str, int]:
        """Batched document frequencies (one query per ``_IN_CHUNK`` tokens)."""
        frequencies: Dict[str, int] = {}
        for start in range(0, len(tokens), _IN_CHUNK):
            chunk = list(tokens[start : start + _IN_CHUNK])
            placeholders = ", ".join("?" for _ in chunk)
            rows = self.backend.execute_sql(
                f"SELECT token, COUNT(*) FROM {_TOKENS} "
                f"WHERE token IN ({placeholders}) GROUP BY token",
                chunk,
            )
            for token, count in rows:
                frequencies[token] = int(count)
        return frequencies

    def distinct_value_count(self) -> int:
        """Number of distinct canonical values across all posting lists."""
        rows = self.backend.execute_sql(
            f"SELECT COUNT(DISTINCT value) FROM {_VALUES}"
        )
        return int(rows[0][0])

    # ------------------------------------------------------------------
    # Tf-idf vectors (write-through cache, cleared on every sync)
    # ------------------------------------------------------------------
    def tfidf_vector(self, relation: str, attribute: str) -> Optional[Dict[str, float]]:
        """The stored tf-idf vector, or ``None`` if not yet computed.

        ``ORDER BY token`` reproduces the sorted-token insertion order of
        the in-memory computation, so the returned dict iterates — and
        sums, for any norm a consumer might take — identically.
        """
        rows = self.backend.execute_sql(
            f"SELECT token, weight FROM {_TFIDF} "
            f"WHERE relation = ? AND attribute = ? ORDER BY token",
            (relation, attribute),
        )
        if not rows:
            return None
        return {token: weight for token, weight in rows}

    def store_tfidf(
        self, relation: str, attribute: str, vector: Dict[str, float]
    ) -> None:
        """Persist one computed tf-idf vector (idempotent per attribute)."""
        self.backend.execute_write_many(
            f"INSERT OR REPLACE INTO {_TFIDF} "
            "(relation, attribute, token, weight) VALUES (?, ?, ?, ?)",
            [
                (relation, attribute, token, weight)
                for token, weight in vector.items()
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PostingStore(backend={self.backend!r}, syncs={self.syncs})"
