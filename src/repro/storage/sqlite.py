"""SQLite storage backend: persistent relations with SQL pushdown.

One :class:`SqliteBackend` wraps one SQLite database — a file path for
durable catalogs or ``":memory:"`` for ephemeral ones.  It implements the
full :class:`~repro.storage.base.StorageBackend` contract plus the pushdown
surface the engine uses:

* **Bulk ingest** via a single ``executemany`` per
  :meth:`~SqliteBackend.insert_rows` call, wrapped in one transaction
  (all-or-nothing, one version bump), consuming generators lazily so CSV
  loads stream straight into the database.
* **Exact predicate semantics.**  The library's own
  :func:`~repro.datastore.types.canonicalize` and selection-matching logic
  are registered as deterministic SQL functions (``repro_canon``,
  ``repro_match``), so pushed-down scans, selections and joins accept
  *precisely* the rows the Python engine accepts — parity is by construction,
  not by approximating canonicalization in SQL.
* **Real indexes** on join/selection columns: expression indexes over
  ``repro_canon(column)``, created on demand the first time a column is used
  as a join key or equality selection (``ensure_canon_index``).
* **Catalog persistence.**  Source schemas are stored in a ``_repro_catalog``
  meta table; :meth:`~repro.datastore.database.Catalog.load_persisted`
  reconstructs a catalog from a reopened file without re-ingesting rows.

Value round-trip
----------------
SQLite's dynamic typing preserves ``str``/``int``/``float``/``bytes``/``None``
cell values exactly.  Booleans (which SQLite would collapse to integers) are
stored as their canonical text ``"true"``/``"false"`` — so in-database
canonicalization agrees with the memory backend — and their column positions
are recorded in a hidden ``_tags`` column from which :meth:`scan`
reconstructs the original ``bool`` objects.  Other Python types raise
:class:`~repro.exceptions.StorageError` at ingest; use the memory backend
for exotic values.

Database files written by this backend contain expression indexes over the
registered ``repro_canon`` function, so they should be reopened through
``SqliteBackend`` (which re-registers the functions), not raw ``sqlite3``.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datastore.sqlgen import SQLITE_DIALECT, exact_condition, quote_identifier
from ..datastore.types import canonicalize
from ..exceptions import StorageError
from .base import PredicateSpec, StorageBackend

#: Relations whose materialized scans are memoized (LRU).  Scans re-run on
#: version change; the bound keeps a huge catalog from pinning every
#: relation's rows in Python memory at once.
_SCAN_CACHE_SIZE = 64

#: Data columns are stored under this prefix so attribute names can never
#: collide with the hidden ``_row_id`` / ``_tags`` bookkeeping columns.
_COL_PREFIX = "c_"

_META_TABLE = "_repro_catalog"


@lru_cache(maxsize=4096)
def _prepared_needle(mode: str, needle: str):
    """Needle-side derivations of one predicate, computed once per needle.

    The SQL function below runs once *per row*; without this memo it would
    re-canonicalize / re-lower / re-tokenize the (constant) needle every
    time — the per-row rework :class:`~repro.engine.predicates
    .CompiledPredicate` exists to avoid.
    """
    from ..similarity.tokenize import tokenize

    if mode == "equals":
        return canonicalize(needle)
    if mode == "contains":
        return str(needle).lower()
    return frozenset(tokenize(needle))


def _sql_match(mode: str, needle: str, value: object) -> int:
    """SQL-registered selection matcher; mirrors ``CompiledPredicate.matches``.

    Must stay semantically identical to
    :meth:`repro.engine.predicates.CompiledPredicate.matches` — the
    cross-backend parity suite depends on it.
    """
    from ..similarity.tokenize import tokenize

    canon = canonicalize(value)
    if canon is None:
        return 0
    prepared = _prepared_needle(mode, needle)
    if mode == "equals":
        return 1 if canon == prepared else 0
    if mode == "contains":
        return 1 if prepared in canon.lower() else 0
    if not prepared:
        return 0
    value_tokens = set(tokenize(canon))
    return 1 if prepared <= value_tokens else 0


class _SqliteRelation:
    """In-session bookkeeping for one stored relation."""

    __slots__ = ("schema", "version", "next_row_id", "indexed_columns")

    def __init__(self, schema, version: int, next_row_id: int) -> None:
        self.schema = schema
        self.version = version
        self.next_row_id = next_row_id
        self.indexed_columns: Set[str] = set()


class SqliteBackend(StorageBackend):
    """Per-catalog SQLite storage with parameterized-SQL pushdown.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (the default) for an
        ephemeral in-process database.
    """

    kind = "sqlite"
    supports_sql_pushdown = True
    supports_session_store = True
    #: Window functions shipped with SQLite 3.25; the windowed ranked-union
    #: pushdown needs ``ROW_NUMBER() OVER (...)``.
    supports_window_pushdown = sqlite3.sqlite_version_info >= (3, 25, 0)
    supports_posting_tables = True
    #: How this backend spells the exact-dialect SQL (canon/match function
    #: names, window capability) — consumed by the pushdown compilers.
    sql_dialect = SQLITE_DIALECT

    def __init__(self, path: "str | os.PathLike[str]" = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._register_functions()
        self._ensure_meta_table()
        self._relations: Dict[str, _SqliteRelation] = {}
        self._scan_cache: "OrderedDict[str, Tuple[int, List]]" = OrderedDict()
        self._closed = False
        self._adopt_existing_relations()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _register_functions(self) -> None:
        try:
            self._conn.create_function(
                "repro_canon", 1, canonicalize, deterministic=True
            )
            self._conn.create_function("repro_match", 3, _sql_match, deterministic=True)
        except TypeError:  # pragma: no cover - very old sqlite without the kwarg
            self._conn.create_function("repro_canon", 1, canonicalize)
            self._conn.create_function("repro_match", 3, _sql_match)

    def _ensure_meta_table(self) -> None:
        with self._conn:
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_META_TABLE} ("
                "source_name TEXT PRIMARY KEY, position INTEGER, payload TEXT)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS _repro_relations ("
                "key TEXT PRIMARY KEY)"
            )

    def _adopt_existing_relations(self) -> None:
        """Record which relations a reopened file already stores.

        Schemas are bound later (when a :class:`Table` adopts the relation);
        until then the relation is visible to :meth:`has_relation` so a
        conflicting :meth:`create_relation` fails loudly.
        """
        rows = self._conn.execute("SELECT key FROM _repro_relations").fetchall()
        for (key,) in rows:
            if key not in self._relations:
                next_id = self._conn.execute(
                    f'SELECT COALESCE(MAX("_row_id"), -1) + 1 FROM {quote_identifier(key)}'
                ).fetchone()[0]
                self._relations[key] = _SqliteRelation(None, 0, next_id)

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True
                self._scan_cache.clear()

    # ------------------------------------------------------------------
    # Relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, key: str, schema, initial_version: int = 0) -> None:
        with self._lock:
            if key in self._relations:
                raise StorageError(f"relation {key!r} already exists on this backend")
            columns = ", ".join(
                quote_identifier(_COL_PREFIX + name) for name in schema.attribute_names
            )
            with self._conn:
                self._conn.execute(
                    f"CREATE TABLE {quote_identifier(key)} ("
                    '"_row_id" INTEGER PRIMARY KEY, "_tags" TEXT NOT NULL, '
                    f"{columns})"
                )
                self._conn.execute(
                    "INSERT INTO _repro_relations (key) VALUES (?)", (key,)
                )
            self._relations[key] = _SqliteRelation(schema, initial_version, 0)

    def bind_schema(self, key: str, schema) -> None:
        with self._lock:
            relation = self._require(key)
            relation.schema = schema
            self._scan_cache.pop(key, None)

    def has_relation(self, key: str) -> bool:
        return key in self._relations

    def drop_relation(self, key: str) -> None:
        with self._lock:
            if key not in self._relations:
                return
            with self._conn:
                self._conn.execute(f"DROP TABLE IF EXISTS {quote_identifier(key)}")
                self._conn.execute("DELETE FROM _repro_relations WHERE key = ?", (key,))
            del self._relations[key]
            self._scan_cache.pop(key, None)

    def relation_keys(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def _require(self, key: str) -> _SqliteRelation:
        try:
            return self._relations[key]
        except KeyError:
            raise StorageError(f"relation {key!r} does not exist on this backend") from None

    def _schema(self, key: str):
        relation = self._require(key)
        if relation.schema is None:
            raise StorageError(
                f"relation {key!r} has no bound schema; reopen it through "
                "Catalog.load_persisted() / a Table adoption before scanning"
            )
        return relation.schema

    # ------------------------------------------------------------------
    # Value encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_values(values: Tuple[object, ...]) -> Tuple[List[object], str]:
        """Map one value tuple to SQLite-storable cells plus its bool tags."""
        encoded: List[object] = []
        tags: List[str] = []
        for index, value in enumerate(values):
            if isinstance(value, bool):
                encoded.append("true" if value else "false")
                tags.append(str(index))
            elif value is None or isinstance(value, (str, int, float, bytes)):
                encoded.append(value)
            else:
                raise StorageError(
                    f"SqliteBackend cannot store a {type(value).__name__} value; "
                    "supported cell types are str, int, float, bool, bytes and None"
                )
        return encoded, ",".join(tags)

    @staticmethod
    def _decode_values(cells: Sequence[object], tags: str) -> Tuple[object, ...]:
        if not tags:
            return tuple(cells)
        values = list(cells)
        for position in tags.split(","):
            index = int(position)
            values[index] = values[index] == "true"
        return tuple(values)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append_row(self, key: str, values: Tuple[object, ...]):
        from ..datastore.table import Row

        with self._lock:
            relation = self._require(key)
            schema = self._schema(key)
            row_id = relation.next_row_id
            encoded, tags = self._encode_values(values)
            with self._conn:
                self._conn.execute(
                    self._insert_sql(key, schema), [row_id, tags, *encoded]
                )
            relation.next_row_id = row_id + 1
            relation.version += 1
            self._scan_cache.pop(key, None)
            return Row(schema, values, row_id)

    def insert_rows(self, key: str, rows: Iterable[Tuple[object, ...]]) -> int:
        with self._lock:
            relation = self._require(key)
            schema = self._schema(key)
            arity = len(schema.attribute_names)
            counter = {"n": 0}

            def encoded_stream() -> Iterator[List[object]]:
                row_id = relation.next_row_id
                for values in rows:
                    if len(values) != arity:
                        raise StorageError(
                            f"row of arity {len(values)} does not match relation "
                            f"{key!r} of arity {arity}"
                        )
                    encoded, tags = self._encode_values(values)
                    yield [row_id, tags, *encoded]
                    row_id += 1
                    counter["n"] += 1

            try:
                with self._conn:
                    self._conn.executemany(self._insert_sql(key, schema), encoded_stream())
            except (sqlite3.Error, StorageError):
                # The transaction rolled back: nothing of the batch is
                # visible and the version/row-id counters were never moved.
                raise
            inserted = counter["n"]
            if inserted:
                relation.next_row_id += inserted
                relation.version += 1
                self._scan_cache.pop(key, None)
            return inserted

    @staticmethod
    def _insert_sql(key: str, schema) -> str:
        columns = ['"_row_id"', '"_tags"'] + [
            quote_identifier(_COL_PREFIX + name) for name in schema.attribute_names
        ]
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {quote_identifier(key)} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _select_columns(self, schema) -> str:
        return ", ".join(
            ['"_row_id"', '"_tags"']
            + [quote_identifier(_COL_PREFIX + name) for name in schema.attribute_names]
        )

    def _build_rows(self, schema, fetched: Iterable[Sequence[object]]) -> List:
        from ..datastore.table import Row

        rows: List = []
        for record in fetched:
            row_id, tags = record[0], record[1]
            rows.append(Row(schema, self._decode_values(record[2:], tags), row_id))
        return rows

    def scan(self, key: str) -> Sequence:
        with self._lock:
            relation = self._require(key)
            cached = self._scan_cache.get(key)
            if cached is not None and cached[0] == relation.version:
                self._scan_cache.move_to_end(key)
                return cached[1]
            schema = self._schema(key)
            fetched = self._conn.execute(
                f"SELECT {self._select_columns(schema)} FROM {quote_identifier(key)} "
                'ORDER BY "_row_id"'
            ).fetchall()
            rows = self._build_rows(schema, fetched)
            self._scan_cache[key] = (relation.version, rows)
            self._scan_cache.move_to_end(key)
            while len(self._scan_cache) > _SCAN_CACHE_SIZE:
                self._scan_cache.popitem(last=False)
            return rows

    def scan_where(self, key: str, predicates: Sequence[PredicateSpec]) -> List:
        """Filtered scan pushed down as one parameterized SELECT."""
        with self._lock:
            schema = self._schema(key)
            conditions: List[str] = []
            params: List[object] = []
            for attribute, mode, needle in predicates:
                column = quote_identifier(_COL_PREFIX + attribute)
                conditions.append(exact_condition(mode, needle, column, params))
                if mode == "equals":
                    self.ensure_canon_index(key, attribute)
            where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
            fetched = self._conn.execute(
                f"SELECT {self._select_columns(schema)} FROM {quote_identifier(key)}"
                f'{where} ORDER BY "_row_id"',
                params,
            ).fetchall()
            return self._build_rows(schema, fetched)

    def row_count(self, key: str) -> int:
        with self._lock:
            self._require(key)
            return self._conn.execute(
                f"SELECT COUNT(*) FROM {quote_identifier(key)}"
            ).fetchone()[0]

    def version(self, key: str) -> int:
        return self._require(key).version

    def distinct_values(self, key: str, attribute: str) -> frozenset:
        with self._lock:
            schema = self._schema(key)
            schema.attribute_index(attribute)  # validates existence
            column = quote_identifier(_COL_PREFIX + attribute)
            fetched = self._conn.execute(
                f"SELECT DISTINCT {column} FROM {quote_identifier(key)}"
            ).fetchall()
        values: Set[str] = set()
        for (value,) in fetched:
            canon = canonicalize(value)
            if canon is not None:
                values.add(canon)
        return frozenset(values)

    # ------------------------------------------------------------------
    # Pushdown support
    # ------------------------------------------------------------------
    def ensure_canon_index(self, key: str, attribute: str) -> None:
        """Create the ``repro_canon(column)`` expression index if missing.

        Called lazily by the pushdown compiler for every join key and
        equality-selection column, so indexes exist exactly where queries
        need them and bulk ingest never pays index maintenance up front.
        """
        with self._lock:
            relation = self._require(key)
            if attribute in relation.indexed_columns:
                return
            column = quote_identifier(_COL_PREFIX + attribute)
            index_name = quote_identifier(
                "ix_" + re.sub(r"\W+", "_", f"{key}_{attribute}")
            )
            try:
                with self._conn:
                    self._conn.execute(
                        f"CREATE INDEX IF NOT EXISTS {index_name} ON "
                        f"{quote_identifier(key)} (repro_canon({column}))"
                    )
            except sqlite3.OperationalError:  # pragma: no cover - old sqlite
                pass  # expression indexes unsupported: queries still run
            relation.indexed_columns.add(attribute)

    def table_sql_name(self, key: str) -> str:
        """Quoted physical table name of ``key`` (for the pushdown compiler)."""
        self._require(key)
        return quote_identifier(key)

    def column_sql_name(self, attribute: str) -> str:
        """Quoted physical column name of ``attribute``."""
        return quote_identifier(_COL_PREFIX + attribute)

    def execute_sql(self, sql: str, params: Sequence[object] = ()) -> List[Tuple]:
        """Run one parameterized read-only statement (the pushdown hook)."""
        with self._lock:
            return self._conn.execute(sql, list(params)).fetchall()

    def execute_write(self, sql: str, params: Sequence[object] = ()) -> None:
        """Run one parameterized write statement in its own transaction.

        Used by the session store (:mod:`repro.persist.store`) to maintain
        its ``_repro_session_*`` tables inside the catalog database; those
        tables are invisible to the relation bookkeeping (they are never
        recorded in ``_repro_relations``).
        """
        self.execute_write_batch([(sql, params)])

    def execute_write_batch(
        self, statements: Sequence[Tuple[str, Sequence[object]]]
    ) -> None:
        """Run several write statements in **one** transaction.

        All-or-nothing: the session store pairs a snapshot replace with its
        journal truncation here, so a crash between the two can never leave
        a fresh snapshot with the previous checkpoint's journal.
        """
        with self._lock:
            with self._conn:
                for sql, params in statements:
                    self._conn.execute(sql, list(params))

    def execute_write_many(
        self, sql: str, rows: Iterable[Sequence[object]]
    ) -> None:
        """Run one parameterized write against many parameter rows.

        ``executemany`` in one transaction — the bulk-ingest hook of the
        posting store (:mod:`repro.storage.postings`), which rewrites whole
        posting lists per attribute.
        """
        with self._lock:
            with self._conn:
                self._conn.executemany(sql, rows)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the underlying connection."""
        return self._closed

    # ------------------------------------------------------------------
    # Catalog metadata persistence
    # ------------------------------------------------------------------
    def save_source_schema(self, name: str, payload: dict) -> None:
        with self._lock:
            position = self._conn.execute(
                f"SELECT COALESCE(MAX(position), -1) + 1 FROM {_META_TABLE}"
            ).fetchone()[0]
            with self._conn:
                self._conn.execute(
                    f"INSERT OR REPLACE INTO {_META_TABLE} "
                    "(source_name, position, payload) VALUES "
                    f"(?, COALESCE((SELECT position FROM {_META_TABLE} "
                    "WHERE source_name = ?), ?), ?)",
                    (name, name, position, json.dumps(payload)),
                )

    def delete_source_schema(self, name: str) -> None:
        with self._lock:
            with self._conn:
                self._conn.execute(
                    f"DELETE FROM {_META_TABLE} WHERE source_name = ?", (name,)
                )

    def persisted_source_schemas(self) -> List[dict]:
        with self._lock:
            rows = self._conn.execute(
                f"SELECT payload FROM {_META_TABLE} ORDER BY position"
            ).fetchall()
        return [json.loads(payload) for (payload,) in rows]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_size_bytes(self) -> int:
        with self._lock:
            page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
            page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
        return int(page_count) * int(page_size)
