"""In-memory storage backend: the seed ``Table`` internals behind the protocol.

Rows are stored as :class:`~repro.datastore.table.Row` objects in a Python
list per relation, exactly as the original ``Table`` kept them; the class
exists so the layers above can treat memory and SQLite storage uniformly.
Distinct-value sets are cached per attribute and invalidated on mutation,
preserving the seed's caching behavior.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..datastore.types import canonicalize
from ..exceptions import StorageError
from .base import StorageBackend


class _MemoryRelation:
    """Storage of one relation: schema binding, row list, caches."""

    __slots__ = ("schema", "rows", "version", "distinct_cache")

    def __init__(self, schema, initial_version: int = 0) -> None:
        self.schema = schema
        self.rows: List = []
        self.version = initial_version
        self.distinct_cache: Dict[str, frozenset] = {}


class MemoryBackend(StorageBackend):
    """Python-list row storage (the default backend).

    Fast, dependency-free and unbounded only by RAM — the right choice for
    tests, small catalogs and latency-critical sessions.  Every
    :class:`~repro.datastore.table.Table` created without an explicit
    backend owns a private ``MemoryBackend``, which is what makes the
    refactor behavior-identical to the seed's embedded row lists.
    """

    kind = "memory"
    supports_sql_pushdown = False

    def __init__(self) -> None:
        self._relations: Dict[str, _MemoryRelation] = {}

    # ------------------------------------------------------------------
    # Relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, key: str, schema, initial_version: int = 0) -> None:
        if key in self._relations:
            raise StorageError(f"relation {key!r} already exists on this backend")
        self._relations[key] = _MemoryRelation(schema, initial_version)

    def bind_schema(self, key: str, schema) -> None:
        self._relation(key).schema = schema

    def has_relation(self, key: str) -> bool:
        return key in self._relations

    def drop_relation(self, key: str) -> None:
        self._relations.pop(key, None)

    def relation_keys(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def _relation(self, key: str) -> _MemoryRelation:
        try:
            return self._relations[key]
        except KeyError:
            raise StorageError(f"relation {key!r} does not exist on this backend") from None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append_row(self, key: str, values: Tuple[object, ...]):
        from ..datastore.table import Row

        relation = self._relation(key)
        stored = Row(relation.schema, values, len(relation.rows))
        relation.rows.append(stored)
        relation.distinct_cache.clear()
        relation.version += 1
        return stored

    def insert_rows(self, key: str, rows: Iterable[Tuple[object, ...]]) -> int:
        from ..datastore.table import Row

        relation = self._relation(key)
        # Atomicity: materialize the batch fully (a generator may raise
        # mid-way while coercing) before any row becomes visible.
        start = len(relation.rows)
        staged = [
            Row(relation.schema, values, start + offset)
            for offset, values in enumerate(rows)
        ]
        if not staged:
            return 0
        relation.rows.extend(staged)
        relation.distinct_cache.clear()
        relation.version += 1
        return len(staged)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def scan(self, key: str) -> Sequence:
        return self._relation(key).rows

    def row_count(self, key: str) -> int:
        return len(self._relation(key).rows)

    def version(self, key: str) -> int:
        return self._relation(key).version

    def distinct_values(self, key: str, attribute: str) -> frozenset:
        relation = self._relation(key)
        cached = relation.distinct_cache.get(attribute)
        if cached is not None:
            return cached
        idx = relation.schema.attribute_index(attribute)
        values: Set[str] = set()
        for row in relation.rows:
            canon = canonicalize(row.values[idx])
            if canon is not None:
                values.add(canon)
        result = frozenset(values)
        relation.distinct_cache[attribute] = result
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_size_bytes(self) -> int:
        """Shallow ``sys.getsizeof`` estimate over all stored value tuples.

        O(total rows); intended for the occasional
        :meth:`~repro.api.service.QService.stats` read, not hot paths.
        """
        import sys

        total = 0
        for relation in self._relations.values():
            for row in relation.rows:
                total += sys.getsizeof(row.values)
                for value in row.values:
                    total += sys.getsizeof(value)
        return total
