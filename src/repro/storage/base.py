"""The storage-backend protocol: the contract at the bottom of the stack.

Everything above this layer — :class:`~repro.datastore.table.Table`, the
catalog, the query engine, profiling, the service API — manipulates relations
through a :class:`StorageBackend`.  The backend owns physical tuple storage;
the layers above own schemas, query semantics and ranking.  Two
implementations ship with the library:

* :class:`~repro.storage.memory.MemoryBackend` — Python-list row storage,
  the refactored form of the original in-memory ``Table`` internals;
* :class:`~repro.storage.sqlite.SqliteBackend` — one SQLite database per
  catalog (on disk or ``:memory:``), with ``executemany`` bulk ingest, real
  indexes on join/selection columns, and SQL pushdown of scans, selections
  and whole conjunctive queries.

Protocol contract
-----------------
Implementations must honor these invariants; the cross-backend parity suite
(``tests/test_storage_backends.py``) holds them to it:

**Scan ordering.**  :meth:`StorageBackend.scan` returns rows in insertion
order, and ``Row.row_id`` is the zero-based insertion position.  Row ids are
never reused or reassigned: answers carry ``(relation, row_id)`` provenance,
and the ranked union's deterministic output order sorts on row-id tuples, so
any backend that renumbered rows would change observable results.

**Canonicalization.**  Join keys, selection matching and
:meth:`StorageBackend.distinct_values` all compare the *canonical* textual
form of a value (:func:`repro.datastore.types.canonicalize`) — stripped,
null-like values mapped to ``None``, booleans to ``"true"``/``"false"``,
integral floats to their integer rendering.  A backend that evaluates
predicates natively (SQL pushdown) must reproduce these semantics exactly;
the SQLite backend does so by registering the library's own canonicalize /
match functions with the database rather than approximating them in SQL.

**Ingest atomicity.**  One :meth:`StorageBackend.insert_rows` call is
all-or-nothing: if any row of the batch fails (arity mismatch, uncodable
value), no row of the batch is visible afterwards and the relation's version
counter does not move.  A successful batch bumps the version exactly once.

**Versioning.**  :meth:`StorageBackend.version` is a per-relation counter
that strictly increases with every successful mutation.  Engine caches key
on ``(table identity, version)`` to detect staleness without callbacks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datastore.schema import RelationSchema
    from ..datastore.table import Row

#: One selection predicate in backend-neutral form:
#: ``(attribute, mode, needle)`` with the same modes as
#: :class:`~repro.datastore.query.SelectionPredicate`.
PredicateSpec = Tuple[str, str, str]


class StorageBackend(ABC):
    """Abstract base of all storage backends.

    A backend stores *relations* keyed by their qualified name
    (``"<source>.<relation>"``).  The :class:`~repro.datastore.table.Table`
    facade binds one relation key to one schema and forwards every data
    operation here; no layer above :mod:`repro.storage` touches physical row
    storage directly.
    """

    #: Short backend identifier (``"memory"`` / ``"sqlite"``), reported by
    #: :class:`~repro.api.types.SystemStats` and the backend registry.
    kind: str = "abstract"

    #: Whether the engine may push scans/selections (and whole conjunctive
    #: queries) down to the backend as SQL.
    supports_sql_pushdown: bool = False

    #: Whether the backend can host the durable session snapshot/journal
    #: next to the relation data (see :mod:`repro.persist`).  When ``True``
    #: the backend must expose ``execute_sql`` and ``execute_write`` so the
    #: session store can manage its ``_repro_session_*`` tables; sessions on
    #: backends without this capability persist to a sidecar file instead.
    supports_session_store: bool = False

    #: Whether the backend can execute a *windowed ranked union*: the whole
    #: k-query union of a ranked view — per-query cost pricing, unified
    #: column projection, ascending-cost ordering and ``LIMIT``/``OFFSET``
    #: pagination — compiled into one windowed ``SELECT``
    #: (:mod:`repro.storage.windowed`).  Requires window-function support
    #: *and* ``supports_sql_pushdown`` (the union's branches are the
    #: per-query pushdown bodies).  Absent the capability, the engine falls
    #: back to the Python :func:`~repro.engine.executor.ranked_union` by
    #: construction.
    supports_window_pushdown: bool = False

    #: Whether the backend can host the persisted profile posting tables
    #: (``_repro_postings_*`` — see :mod:`repro.storage.postings`).  When
    #: ``True`` the backend must expose ``execute_sql``, ``execute_write``,
    #: ``execute_write_batch`` and ``execute_write_many``; registration's
    #: candidate intersection then runs as an indexed join and reopened
    #: sessions skip the in-memory posting rebuild.
    supports_posting_tables: bool = False

    # ------------------------------------------------------------------
    # Relation lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def create_relation(
        self, key: str, schema: "RelationSchema", initial_version: int = 0
    ) -> None:
        """Create storage for ``key``; raises ``StorageError`` if it exists.

        ``initial_version`` seeds the relation's version counter — a table
        migrating between backends carries its counter forward so engine
        caches keyed on ``(table, version)`` can never alias across the move.
        """

    @abstractmethod
    def bind_schema(self, key: str, schema: "RelationSchema") -> None:
        """(Re)associate an *existing* relation with its schema object.

        Used when reopening a persistent backend: the relation's rows are
        already stored, and the freshly reconstructed schema object must be
        the one future :class:`~repro.datastore.table.Row` objects reference.
        """

    @abstractmethod
    def has_relation(self, key: str) -> bool:
        """Whether storage for ``key`` exists."""

    @abstractmethod
    def drop_relation(self, key: str) -> None:
        """Delete ``key``'s storage (no-op if absent)."""

    @abstractmethod
    def relation_keys(self) -> Tuple[str, ...]:
        """Keys of every stored relation."""

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    @abstractmethod
    def append_row(self, key: str, values: Tuple[object, ...]) -> "Row":
        """Append one coerced value tuple; returns the stored row."""

    @abstractmethod
    def insert_rows(self, key: str, rows: Iterable[Tuple[object, ...]]) -> int:
        """Bulk-ingest coerced value tuples; returns the number inserted.

        Atomic (see the module docstring) and streaming-friendly: ``rows``
        may be a generator and is consumed lazily, so callers can feed CSV
        batches without materializing whole files.
        """

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @abstractmethod
    def scan(self, key: str) -> Sequence["Row"]:
        """All rows of ``key`` in insertion (row-id) order.

        The returned sequence is owned by the backend — callers must not
        mutate it.
        """

    def scan_where(
        self, key: str, predicates: Sequence[PredicateSpec]
    ) -> Optional[List["Row"]]:
        """Rows passing all ``predicates``, or ``None`` if not supported.

        Backends with native filtering (SQL pushdown) override this; the
        engine falls back to a full :meth:`scan` plus Python-side predicate
        evaluation when it returns ``None``.  Semantics must match
        :meth:`repro.engine.predicates.CompiledPredicate.matches` exactly.
        """
        del key, predicates
        return None

    @abstractmethod
    def row_count(self, key: str) -> int:
        """Number of stored rows."""

    @abstractmethod
    def version(self, key: str) -> int:
        """The relation's monotonically increasing data version."""

    @abstractmethod
    def distinct_values(self, key: str, attribute: str) -> frozenset:
        """Canonicalized distinct non-null values of one attribute."""

    # ------------------------------------------------------------------
    # Catalog metadata persistence
    # ------------------------------------------------------------------
    def save_source_schema(self, name: str, payload: dict) -> None:
        """Persist one source's schema description (no-op by default).

        Persistent backends store the payload so a later session can
        reconstruct the catalog without re-ingesting data.
        """
        del name, payload

    def delete_source_schema(self, name: str) -> None:
        """Forget a persisted source schema (no-op by default)."""
        del name

    def persisted_source_schemas(self) -> List[dict]:
        """All persisted source-schema payloads, in registration order."""
        return []

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def storage_size_bytes(self) -> int:
        """Approximate bytes of stored data (may be O(rows) to compute)."""

    def close(self) -> None:
        """Release held resources (connections, caches).  Idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(relations={len(self.relation_keys())})"
