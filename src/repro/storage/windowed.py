"""Windowed ranked-union pushdown: a whole top-k view read in one SELECT.

PR 4's whole-query pushdown (:mod:`repro.storage.pushdown`) runs *one*
conjunctive query inside the backend; the hot serving path of a ranked view
still issued k of those round trips and performed ranking, schema alignment
and pagination tuple-by-tuple in Python.  This module compiles the entire
ranked union — per-query cost pricing, ascending-cost ordering, unified
column projection and ``LIMIT``/``OFFSET`` k-best pagination — into **one**
parameterized windowed ``SELECT``:

* every generated query becomes one branch of a ``UNION ALL``, its body
  (FROM/WHERE) rendered by the same
  :func:`~repro.storage.pushdown.compile_query_body` the whole-query
  pushdown uses, so join/selection semantics are shared, not re-derived;
* each branch prices its rows with a bound ``?  AS "_cost"`` parameter (the
  tree cost round-trips exactly as an IEEE double) and numbers them with
  ``ROW_NUMBER() OVER (ORDER BY <row ids along the atom list>) AS "_seq"``
  — precisely the deterministic emission order of the Python engine;
* the outer query ranks the union with ``ROW_NUMBER() OVER (ORDER BY
  "_cost", "_branch", "_seq") AS "_rank"`` and paginates with ``LIMIT ?
  OFFSET ?`` (``-1`` meaning unlimited, as SQLite requires a LIMIT clause
  to accept OFFSET).

Parity with :func:`~repro.engine.executor.ranked_union` is structural:
queries enter in ascending-cost order (Python's *stable* sort), so
``("_cost", "_branch", "_seq")`` reproduces the stable sort's tie order —
equal-cost answers keep query order, then per-query emission order.

Two fetch shapes share the branch compiler:

* :meth:`WindowedUnionPushdown.fetch_raw` — the cache-priming batch read:
  per-branch *raw* answers (the query's own output labels), byte-identical
  to :class:`~repro.storage.pushdown.SqlPushdown` running each query
  separately, but in a single round trip.  The view uses it to fill its
  per-signature answer cache on a cold refresh.
* :meth:`WindowedUnionPushdown.execute_ranked` — the ranked, paginated
  read: the union's unified columns are projected per branch (``NULL`` for
  columns a branch does not populate) and the window/LIMIT/OFFSET run in
  the backend.  The view's :meth:`~repro.core.view.RankedView.answers_page`
  serves straight from it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..datastore.provenance import AnswerTuple, TupleProvenance
from .pushdown import backend_dialect, compile_query_body, relations_on_backend
from .sqlite import quote_identifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datastore.database import Catalog
    from ..datastore.query import ConjunctiveQuery


def _decode_cell(cell: object, tags: object, attribute_index: int) -> object:
    """Decode one stored cell (bool round-trip via the row's tag list).

    Single-cell form of :meth:`SqliteBackend._decode_values`: a cell is a
    bool iff its full-row attribute index appears in the row's ``_tags``.
    """
    if tags and str(attribute_index) in str(tags).split(","):
        return cell == "true"
    return cell


class _BranchPlan:
    """Per-query compilation/decoding metadata for one union branch."""

    __slots__ = (
        "query",
        "atom_count",
        "relations",
        "output_cells",
        "unified_cells",
        "unified_mapping",
    )

    def __init__(self, catalog: "Catalog", query: "ConjunctiveQuery") -> None:
        self.query = query
        #: Ranked-shape extras, filled by ``compile_ranked``: the per-
        #: unified-column cell descriptors and this query's label mapping.
        self.unified_cells: Optional[List[Tuple[str, int, int]]] = None
        self.unified_mapping: Optional[Dict[str, str]] = None
        self.atom_count = len(query.atoms)
        self.relations = [atom.relation for atom in query.atoms]
        position = {atom.alias: i for i, atom in enumerate(query.atoms)}
        schemas = {
            atom.alias: catalog.relation(atom.relation).schema for atom in query.atoms
        }
        #: One entry per output column, in output order:
        #: ``(label, atom position, attribute index)``.
        self.output_cells: List[Tuple[str, int, int]] = [
            (
                column.label,
                position[column.alias],
                schemas[column.alias].attribute_index(column.attribute),
            )
            for column in query.outputs
        ]


class WindowedUnionPushdown:
    """Compiles and runs whole ranked unions on a window-capable backend."""

    def __init__(self, backend) -> None:
        self.backend = backend
        #: How many union round trips ran inside the backend (raw batch
        #: fetches and ranked page reads both count — each is one SELECT).
        self.unions_executed = 0

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def can_execute(self, catalog: "Catalog", queries: Sequence["ConjunctiveQuery"]) -> bool:
        """Whether the whole union can run inside the backend.

        Falls back (returns ``False``) when the dialect lacks window
        functions, any query touches a foreign-backend relation, or a query
        has no output columns (the engine's all-attributes projection for
        outputless queries is not worth replicating in SQL).
        """
        return self.ineligibility(catalog, queries) is None

    def ineligibility(
        self, catalog: "Catalog", queries: Sequence["ConjunctiveQuery"]
    ) -> Optional[str]:
        """The concrete reason the union cannot run in-backend, or ``None``.

        The single eligibility decision point: :meth:`can_execute` is a
        thin predicate over it, and the observability layer's explain log
        records exactly this string when a read falls back, so the reason a
        dashboard shows is the reason the engine actually acted on.
        """
        if not queries:
            return "empty query batch"
        if not backend_dialect(self.backend).supports_window_functions:
            return "backend dialect lacks window functions"
        for query in queries:
            if not query.outputs:
                return "a branch query has no output columns"
            if not relations_on_backend(self.backend, catalog, query):
                missing = []
                for atom in query.atoms:
                    try:
                        table = catalog.relation(atom.relation)
                    except Exception:
                        missing.append(atom.relation)
                        continue
                    if (
                        table.storage_backend is not self.backend
                        or table.storage_key != atom.relation
                    ):
                        missing.append(atom.relation)
                names = ", ".join(sorted(set(missing)))
                return (
                    f"relation(s) not stored on the window-capable backend: "
                    f"{names or 'empty atom list'}"
                )
        return None

    # ------------------------------------------------------------------
    # Branch compilation (shared by both fetch shapes)
    # ------------------------------------------------------------------
    def _compile_branches(
        self,
        plans: Sequence[_BranchPlan],
        params: List[object],
        with_cost: bool,
        cell_exprs: List[List[Tuple[str, int, int]]],
        cell_count: int,
    ) -> Tuple[List[str], int]:
        """Render every branch SELECT; returns (branch SQL, max atom count).

        ``cell_exprs[i]`` lists the ``i``-th branch's projected cells as
        ``(alias_sql.column_sql, atom position, attribute index)`` — the raw
        shape projects one cell per output column, the ranked shape one per
        unified column.  Branches project ``NULL`` padding up to
        ``cell_count`` so every arm of the ``UNION ALL`` has equal arity.
        """
        max_atoms = max(plan.atom_count for plan in plans)
        branches: List[str] = []
        for index, plan in enumerate(plans):
            query = plan.query
            query.validate()
            select_items: List[str] = []
            if with_cost:
                params.append(query.cost)
                select_items.append('? AS "_cost"')
            select_items.append(f'{index} AS "_branch"')
            rid_order = ", ".join(
                f'{quote_identifier(atom.alias)}."_row_id"' for atom in query.atoms
            )
            select_items.append(f'ROW_NUMBER() OVER (ORDER BY {rid_order}) AS "_seq"')
            for slot in range(max_atoms):
                if slot < plan.atom_count:
                    alias_sql = quote_identifier(query.atoms[slot].alias)
                    select_items.append(f'{alias_sql}."_row_id" AS "_rid_{slot}"')
                    select_items.append(f'{alias_sql}."_tags" AS "_tag_{slot}"')
                else:
                    select_items.append(f'NULL AS "_rid_{slot}"')
                    select_items.append(f'NULL AS "_tag_{slot}"')
            exprs = cell_exprs[index]
            for slot in range(cell_count):
                if slot < len(exprs):
                    select_items.append(f'{exprs[slot][0]} AS "_val_{slot}"')
                else:
                    select_items.append(f'NULL AS "_val_{slot}"')
            # Selection needles land in ``params`` after this branch's cost
            # parameter — the same order they appear in the SQL text.
            from_items, conditions = compile_query_body(self.backend, query, params)
            branch_sql = "SELECT " + ", ".join(select_items)
            branch_sql += "\nFROM " + ", ".join(from_items)
            if conditions:
                branch_sql += "\nWHERE " + " AND ".join(conditions)
            branches.append(branch_sql)
        return branches, max_atoms

    def _output_cell_exprs(
        self, plans: Sequence[_BranchPlan]
    ) -> List[List[Tuple[str, int, int]]]:
        """Per-branch projected cells, one per output column (raw shape)."""
        exprs: List[List[Tuple[str, int, int]]] = []
        for plan in plans:
            query = plan.query
            branch_exprs = []
            for column, (_, atom_pos, attr_index) in zip(
                query.outputs, plan.output_cells
            ):
                column_sql = (
                    f"{quote_identifier(column.alias)}."
                    f"{self.backend.column_sql_name(column.attribute)}"
                )
                branch_exprs.append((column_sql, atom_pos, attr_index))
            exprs.append(branch_exprs)
        return exprs

    # ------------------------------------------------------------------
    # Raw batch fetch (cache priming)
    # ------------------------------------------------------------------
    def compile_raw(
        self, catalog: "Catalog", queries: Sequence["ConjunctiveQuery"]
    ) -> Tuple[str, List[object], List[_BranchPlan], int]:
        """The single-round-trip batch SELECT for raw per-query answers."""
        params: List[object] = []
        plans = [_BranchPlan(catalog, query) for query in queries]
        cell_exprs = self._output_cell_exprs(plans)
        cell_count = max(len(exprs) for exprs in cell_exprs)
        branches, max_atoms = self._compile_branches(
            plans, params, with_cost=False, cell_exprs=cell_exprs, cell_count=cell_count
        )
        sql = "\nUNION ALL\n".join(branches)
        sql += '\nORDER BY "_branch", "_seq"'
        return sql, params, plans, max_atoms

    def fetch_raw(
        self, catalog: "Catalog", queries: Sequence["ConjunctiveQuery"]
    ) -> List[List[AnswerTuple]]:
        """Raw answers of every query, in one backend round trip.

        ``result[i]`` is byte-identical — values (and their order inside
        each answer), cost, provenance, list order — to executing
        ``queries[i]`` alone through the whole-query pushdown.
        """
        sql, params, plans, max_atoms = self.compile_raw(catalog, queries)
        fetched = self.backend.execute_sql(sql, params)
        self.unions_executed += 1
        results: List[List[AnswerTuple]] = [[] for _ in plans]
        base = 2  # layout: _branch, _seq, then rid/tag slots, then cells
        cell_base = base + 2 * max_atoms
        for record in fetched:
            plan = plans[record[0]]
            results[record[0]].append(
                self._raw_answer(plan, record, base, cell_base)
            )
        return results

    @staticmethod
    def _raw_answer(
        plan: _BranchPlan, record: Sequence[object], base: int, cell_base: int
    ) -> AnswerTuple:
        query = plan.query
        values: Dict[str, object] = {}
        for slot, (label, atom_pos, attr_index) in enumerate(plan.output_cells):
            tags = record[base + 2 * atom_pos + 1]
            values[label] = _decode_cell(record[cell_base + slot], tags, attr_index)
        base_tuples = frozenset(
            (relation, record[base + 2 * pos])
            for pos, relation in enumerate(plan.relations)
        )
        provenance = TupleProvenance(
            query_id=query.provenance or "query",
            query_cost=query.cost,
            base_tuples=base_tuples,
        )
        return AnswerTuple(values=values, cost=query.cost, provenance=provenance)

    # ------------------------------------------------------------------
    # Ranked, paginated fetch
    # ------------------------------------------------------------------
    def compile_ranked(
        self,
        catalog: "Catalog",
        queries: Sequence["ConjunctiveQuery"],
        unified_columns: Sequence[str],
        mappings: Sequence[Dict[str, str]],
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Tuple[str, List[object], List[_BranchPlan], int]:
        """The windowed, paginated ranked-union SELECT.

        ``queries`` must already be in the union's ascending-cost order and
        ``mappings[i]`` must be the ``i``-th query's label remapping, both
        as produced by :func:`~repro.engine.executor.union_column_plan`.
        """
        params: List[object] = []
        plans = [_BranchPlan(catalog, query) for query in queries]
        unified_slots = {column: i for i, column in enumerate(unified_columns)}
        cell_exprs: List[List[Tuple[str, int, int]]] = []
        for plan, mapping in zip(plans, mappings):
            # One expr per unified column; a later output with the same
            # unified target overwrites an earlier one — the same last-wins
            # rule project_answer applies to duplicate labels.
            per_slot: Dict[int, Tuple[str, int, int]] = {}
            for column, (label, atom_pos, attr_index) in zip(
                plan.query.outputs, plan.output_cells
            ):
                slot = unified_slots[mapping.get(label, label)]
                column_sql = (
                    f"{quote_identifier(column.alias)}."
                    f"{self.backend.column_sql_name(column.attribute)}"
                )
                per_slot[slot] = (column_sql, atom_pos, attr_index)
            branch_exprs = [
                per_slot.get(slot, ("NULL", -1, -1))
                for slot in range(len(unified_columns))
            ]
            cell_exprs.append(branch_exprs)
        branches, max_atoms = self._compile_branches(
            plans,
            params,
            with_cost=True,
            cell_exprs=cell_exprs,
            cell_count=len(unified_columns),
        )
        for plan, exprs, mapping in zip(plans, cell_exprs, mappings):
            plan.unified_cells = exprs
            plan.unified_mapping = dict(mapping)
        union_sql = "\nUNION ALL\n".join(branches)
        sql = (
            "SELECT *, ROW_NUMBER() OVER "
            '(ORDER BY "_cost", "_branch", "_seq") AS "_rank"\n'
            f"FROM (\n{union_sql}\n)\n"
            'ORDER BY "_rank"\nLIMIT ? OFFSET ?'
        )
        params.append(-1 if limit is None else limit)
        params.append(offset)
        return sql, params, plans, max_atoms

    def execute_ranked(
        self,
        catalog: "Catalog",
        queries: Sequence["ConjunctiveQuery"],
        unified_columns: Sequence[str],
        mappings: Sequence[Dict[str, str]],
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[AnswerTuple]:
        """One page of the ranked union, ordered and paginated in-backend.

        The result is byte-identical to the corresponding slice of
        :func:`~repro.engine.executor.ranked_union` over the same queries:
        same unified values (and key order inside each answer), costs,
        provenance and list order.
        """
        sql, params, plans, max_atoms = self.compile_ranked(
            catalog, queries, unified_columns, mappings, limit, offset
        )
        fetched = self.backend.execute_sql(sql, params)
        self.unions_executed += 1
        answers: List[AnswerTuple] = []
        base = 3  # layout: _cost, _branch, _seq, rid/tag slots, cells, _rank
        cell_base = base + 2 * max_atoms
        for record in fetched:
            plan = plans[record[1]]
            answers.append(
                self._ranked_answer(
                    plan, unified_columns, record, base, cell_base
                )
            )
        return answers

    @staticmethod
    def _ranked_answer(
        plan: _BranchPlan,
        unified_columns: Sequence[str],
        record: Sequence[object],
        base: int,
        cell_base: int,
    ) -> AnswerTuple:
        query = plan.query
        mapping = plan.unified_mapping or {}
        cells = plan.unified_cells or []
        unified_slots = {column: i for i, column in enumerate(unified_columns)}
        # Key order parity with project_answer: the query's own labels in
        # first-occurrence output order (mapped onto their unified columns),
        # then the remaining unified columns padded with None.  A duplicate
        # label revisits the same unified slot — same value, same position.
        values: Dict[str, object] = {}
        for label, _, _ in plan.output_cells:
            unified = mapping.get(label, label)
            slot = unified_slots[unified]
            _, atom_pos, attr_index = cells[slot]
            tags = record[base + 2 * atom_pos + 1]
            values[unified] = _decode_cell(
                record[cell_base + slot], tags, attr_index
            )
        for column in unified_columns:
            values.setdefault(column, None)
        base_tuples = frozenset(
            (relation, record[base + 2 * pos])
            for pos, relation in enumerate(plan.relations)
        )
        provenance = TupleProvenance(
            query_id=query.provenance or "query",
            query_cost=query.cost,
            base_tuples=base_tuples,
        )
        return AnswerTuple(values=values, cost=query.cost, provenance=provenance)
