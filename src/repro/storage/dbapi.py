"""Generic DB-API 2.0 relation storage, and the psycopg2-gated Postgres flavor.

:class:`DbApiBackend` re-implements the SQLite backend's row model —
``"_row_id"`` insertion positions, ``"_tags"``-encoded booleans, ``c_``
prefixed data columns, a ``_repro_relations`` key registry and a
``_repro_catalog`` source-schema store — on top of any DB-API 2.0
connection, so a server-backed database becomes a *config choice* rather
than a port.  The capability flags tell the rest of the stack exactly what
falls back:

==========================  =========  ======================================
capability                  value      consequence
==========================  =========  ======================================
``supports_sql_pushdown``   ``False``  scans/joins/selections run in the
                                       Python engine (the backend cannot
                                       register the library's canon/match
                                       functions the exact dialect needs)
``supports_window_pushdown``  ``False``  ranked unions use the Python
                                       :func:`~repro.engine.executor.ranked_union`
``supports_posting_tables``  ``True``  profile posting lists persist; the
                                       candidate self-join runs server-side
``supports_session_store``  ``False``  sessions persist to a JSON sidecar
==========================  =========  ======================================

Fallback by construction: nothing above the storage layer checks *which*
backend is active — only these flags — so every read stays correct, just
served by the Python engine instead of pushed-down SQL.

The generic class is exercised in the test suite through the standard
library's own ``sqlite3`` DB-API driver (qmark paramstyle);
:class:`PostgresBackend` merely binds it to a psycopg2 connection (format
paramstyle, ``TEXT`` cells) and fails at construction — with a clear
:class:`~repro.exceptions.StorageError` — when psycopg2 is not installed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from ..datastore.types import canonicalize
from ..exceptions import StorageError
from .base import StorageBackend
from .sqlite import SqliteBackend, quote_identifier

#: Data columns carry this prefix (same scheme as the SQLite backend).
_COL_PREFIX = "c_"

_META_TABLE = "_repro_catalog"
_RELATIONS_TABLE = "_repro_relations"


class _DbApiRelation:
    """In-session bookkeeping for one stored relation."""

    __slots__ = ("schema", "version", "next_row_id")

    def __init__(self, schema, version: int, next_row_id: int) -> None:
        self.schema = schema
        self.version = version
        self.next_row_id = next_row_id


class DbApiBackend(StorageBackend):
    """Relation storage over an arbitrary DB-API 2.0 connection.

    Parameters
    ----------
    connection:
        An open DB-API 2.0 connection.  The backend owns it from here on
        (:meth:`close` closes it) and serializes all access behind one
        lock, matching the SQLite backend's threading contract.
    paramstyle:
        ``"qmark"`` (``?`` placeholders — sqlite3 and most embedded
        drivers) or ``"format"`` (``%s`` — psycopg2, MySQLdb).  SQL built
        by this module and by the posting store is written qmark-style;
        under ``"format"`` every statement is translated before execution.
    """

    kind = "dbapi"
    supports_sql_pushdown = False
    supports_session_store = False
    supports_window_pushdown = False
    supports_posting_tables = True

    #: Column type of the ``c_*`` data cells — ``""`` leaves typing to the
    #: engine (SQLite affinity); strongly-typed engines override (see
    #: :class:`PostgresBackend`).
    _cell_type = ""

    def __init__(self, connection, paramstyle: str = "qmark") -> None:
        if paramstyle not in ("qmark", "format"):
            raise StorageError(
                f"unsupported DB-API paramstyle {paramstyle!r}; "
                "supported: qmark, format"
            )
        self._conn = connection
        self._paramstyle = paramstyle
        self._lock = threading.RLock()
        self._relations: Dict[str, _DbApiRelation] = {}
        self._closed = False
        self._ensure_meta_tables()
        self._adopt_existing_relations()

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _sql(self, statement: str) -> str:
        """Translate qmark placeholders to the connection's paramstyle.

        Safe textually: no SQL this backend (or the posting store) builds
        ever embeds a literal ``?`` — every value travels as a parameter.
        """
        if self._paramstyle == "format":
            return statement.replace("?", "%s")
        return statement

    def _execute(self, statement: str, params: Sequence[object] = ()):
        cursor = self._conn.cursor()
        cursor.execute(self._sql(statement), list(params))
        return cursor

    def _commit(self) -> None:
        self._conn.commit()

    def _rollback(self) -> None:
        try:
            self._conn.rollback()
        except Exception:  # pragma: no cover - connection already dead
            pass

    def _ensure_meta_tables(self) -> None:
        try:
            self._execute(
                f"CREATE TABLE IF NOT EXISTS {_META_TABLE} ("
                "source_name TEXT PRIMARY KEY, position INTEGER, payload TEXT)"
            )
            self._execute(
                f"CREATE TABLE IF NOT EXISTS {_RELATIONS_TABLE} ("
                "key TEXT PRIMARY KEY)"
            )
            self._commit()
        except Exception:
            self._rollback()
            raise

    def _adopt_existing_relations(self) -> None:
        rows = self._execute(f"SELECT key FROM {_RELATIONS_TABLE}").fetchall()
        for (key,) in rows:
            if key not in self._relations:
                next_id = self._execute(
                    f'SELECT COALESCE(MAX("_row_id"), -1) + 1 '
                    f"FROM {quote_identifier(key)}"
                ).fetchone()[0]
                self._relations[key] = _DbApiRelation(None, 0, int(next_id))

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the underlying connection."""
        return self._closed

    # ------------------------------------------------------------------
    # Relation lifecycle
    # ------------------------------------------------------------------
    def create_relation(self, key: str, schema, initial_version: int = 0) -> None:
        with self._lock:
            if key in self._relations:
                raise StorageError(f"relation {key!r} already exists on this backend")
            cell = f" {self._cell_type}" if self._cell_type else ""
            columns = ", ".join(
                f"{quote_identifier(_COL_PREFIX + name)}{cell}"
                for name in schema.attribute_names
            )
            try:
                self._execute(
                    f"CREATE TABLE {quote_identifier(key)} ("
                    f'"_row_id" INTEGER PRIMARY KEY, "_tags" TEXT NOT NULL, '
                    f"{columns})"
                )
                self._execute(
                    f"INSERT INTO {_RELATIONS_TABLE} (key) VALUES (?)", (key,)
                )
                self._commit()
            except Exception:
                self._rollback()
                raise
            self._relations[key] = _DbApiRelation(schema, initial_version, 0)

    def bind_schema(self, key: str, schema) -> None:
        with self._lock:
            self._require(key).schema = schema

    def has_relation(self, key: str) -> bool:
        return key in self._relations

    def drop_relation(self, key: str) -> None:
        with self._lock:
            if key not in self._relations:
                return
            try:
                self._execute(f"DROP TABLE IF EXISTS {quote_identifier(key)}")
                self._execute(
                    f"DELETE FROM {_RELATIONS_TABLE} WHERE key = ?", (key,)
                )
                self._commit()
            except Exception:
                self._rollback()
                raise
            del self._relations[key]

    def relation_keys(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def _require(self, key: str) -> _DbApiRelation:
        try:
            return self._relations[key]
        except KeyError:
            raise StorageError(
                f"relation {key!r} does not exist on this backend"
            ) from None

    def _schema(self, key: str):
        relation = self._require(key)
        if relation.schema is None:
            raise StorageError(
                f"relation {key!r} has no bound schema; reopen it through "
                "Catalog.load_persisted() / a Table adoption before scanning"
            )
        return relation.schema

    # ------------------------------------------------------------------
    # Ingest (same encode scheme as the SQLite backend)
    # ------------------------------------------------------------------
    def append_row(self, key: str, values: Tuple[object, ...]):
        from ..datastore.table import Row

        with self._lock:
            relation = self._require(key)
            schema = self._schema(key)
            row_id = relation.next_row_id
            encoded, tags = SqliteBackend._encode_values(values)
            try:
                self._execute(self._insert_sql(key, schema), [row_id, tags, *encoded])
                self._commit()
            except Exception:
                self._rollback()
                raise
            relation.next_row_id = row_id + 1
            relation.version += 1
            return Row(schema, values, row_id)

    def insert_rows(self, key: str, rows: Iterable[Tuple[object, ...]]) -> int:
        with self._lock:
            relation = self._require(key)
            schema = self._schema(key)
            arity = len(schema.attribute_names)
            counter = {"n": 0}

            def encoded_stream() -> Iterator[List[object]]:
                row_id = relation.next_row_id
                for values in rows:
                    if len(values) != arity:
                        raise StorageError(
                            f"row of arity {len(values)} does not match relation "
                            f"{key!r} of arity {arity}"
                        )
                    encoded, tags = SqliteBackend._encode_values(values)
                    yield [row_id, tags, *encoded]
                    row_id += 1
                    counter["n"] += 1

            try:
                cursor = self._conn.cursor()
                cursor.executemany(
                    self._sql(self._insert_sql(key, schema)), encoded_stream()
                )
                self._commit()
            except Exception:
                self._rollback()
                raise
            inserted = counter["n"]
            if inserted:
                relation.next_row_id += inserted
                relation.version += 1
            return inserted

    @staticmethod
    def _insert_sql(key: str, schema) -> str:
        columns = ['"_row_id"', '"_tags"'] + [
            quote_identifier(_COL_PREFIX + name) for name in schema.attribute_names
        ]
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {quote_identifier(key)} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _select_columns(self, schema) -> str:
        return ", ".join(
            ['"_row_id"', '"_tags"']
            + [quote_identifier(_COL_PREFIX + name) for name in schema.attribute_names]
        )

    def scan(self, key: str) -> Sequence:
        from ..datastore.table import Row

        with self._lock:
            schema = self._schema(key)
            fetched = self._execute(
                f"SELECT {self._select_columns(schema)} "
                f'FROM {quote_identifier(key)} ORDER BY "_row_id"'
            ).fetchall()
            rows: List = []
            for record in fetched:
                row_id, tags = record[0], record[1]
                rows.append(
                    Row(
                        schema,
                        SqliteBackend._decode_values(record[2:], tags),
                        int(row_id),
                    )
                )
            return rows

    def row_count(self, key: str) -> int:
        with self._lock:
            self._require(key)
            return int(
                self._execute(
                    f"SELECT COUNT(*) FROM {quote_identifier(key)}"
                ).fetchone()[0]
            )

    def version(self, key: str) -> int:
        return self._require(key).version

    def distinct_values(self, key: str, attribute: str) -> frozenset:
        with self._lock:
            schema = self._schema(key)
            schema.attribute_index(attribute)  # validates existence
            column = quote_identifier(_COL_PREFIX + attribute)
            fetched = self._execute(
                f"SELECT DISTINCT {column} FROM {quote_identifier(key)}"
            ).fetchall()
        values: Set[str] = set()
        for (value,) in fetched:
            canon = canonicalize(value)
            if canon is not None:
                values.add(canon)
        return frozenset(values)

    # ------------------------------------------------------------------
    # Catalog metadata persistence
    # ------------------------------------------------------------------
    def save_source_schema(self, name: str, payload: dict) -> None:
        import json

        with self._lock:
            try:
                # Re-saving keeps the source's registration position (same
                # rule as the SQLite backend, spelled portably).
                existing = self._execute(
                    f"SELECT position FROM {_META_TABLE} WHERE source_name = ?",
                    (name,),
                ).fetchone()
                if existing is not None:
                    position = existing[0]
                    self._execute(
                        f"DELETE FROM {_META_TABLE} WHERE source_name = ?",
                        (name,),
                    )
                else:
                    position = self._execute(
                        f"SELECT COALESCE(MAX(position), -1) + 1 FROM {_META_TABLE}"
                    ).fetchone()[0]
                self._execute(
                    f"INSERT INTO {_META_TABLE} (source_name, position, payload) "
                    "VALUES (?, ?, ?)",
                    (name, int(position), json.dumps(payload)),
                )
                self._commit()
            except Exception:
                self._rollback()
                raise

    def delete_source_schema(self, name: str) -> None:
        with self._lock:
            try:
                self._execute(
                    f"DELETE FROM {_META_TABLE} WHERE source_name = ?", (name,)
                )
                self._commit()
            except Exception:
                self._rollback()
                raise

    def persisted_source_schemas(self) -> List[dict]:
        import json

        with self._lock:
            rows = self._execute(
                f"SELECT payload FROM {_META_TABLE} ORDER BY position"
            ).fetchall()
        return [json.loads(payload) for (payload,) in rows]

    # ------------------------------------------------------------------
    # Posting-store hooks (qmark statements translated by :meth:`_sql`)
    # ------------------------------------------------------------------
    def execute_sql(self, sql: str, params: Sequence[object] = ()) -> List[Tuple]:
        """Run one parameterized read-only statement."""
        with self._lock:
            return self._execute(sql, params).fetchall()

    def execute_write(self, sql: str, params: Sequence[object] = ()) -> None:
        """Run one parameterized write statement in its own transaction."""
        self.execute_write_batch([(sql, params)])

    def execute_write_batch(
        self, statements: Sequence[Tuple[str, Sequence[object]]]
    ) -> None:
        """Run several write statements in one transaction (all-or-nothing)."""
        with self._lock:
            try:
                for sql, params in statements:
                    self._execute(sql, params)
                self._commit()
            except Exception:
                self._rollback()
                raise

    def execute_write_many(self, sql: str, rows: Iterable[Sequence[object]]) -> None:
        """Run one parameterized write against many parameter rows."""
        with self._lock:
            try:
                cursor = self._conn.cursor()
                cursor.executemany(self._sql(sql), [list(row) for row in rows])
                self._commit()
            except Exception:
                self._rollback()
                raise

    def storage_size_bytes(self) -> int:
        """Row-count × average-arity estimate (no portable page accounting)."""
        total = 0
        for key in self._relations:
            schema = self._relations[key].schema
            arity = len(schema.attribute_names) if schema is not None else 1
            total += self.row_count(key) * arity * 8
        return total


class PostgresBackend(DbApiBackend):
    """The DB-API backend bound to a PostgreSQL connection via psycopg2.

    Selected with a ``"postgres:<dsn>"`` backend spec.  Construction fails
    with a :class:`~repro.exceptions.StorageError` naming the missing
    driver when psycopg2 is not installed — the library never grows a hard
    dependency on it.

    Caveat (documented, not hidden): Postgres types the ``c_*`` cells as
    ``TEXT``, so non-string cells round-trip as their textual form.  Every
    engine comparison goes through canonical forms and is unaffected;
    only raw cell display differs from the memory/SQLite backends.
    """

    kind = "postgres"
    _cell_type = "TEXT"

    def __init__(self, dsn: str) -> None:
        try:
            import psycopg2  # type: ignore[import-untyped]
        except ImportError as exc:  # pragma: no cover - driver present in some envs
            raise StorageError(
                "the postgres storage backend requires the psycopg2 driver "
                "(pip install psycopg2-binary); it is not installed"
            ) from exc
        super().__init__(psycopg2.connect(dsn), paramstyle="format")
