"""Mixed-traffic serving benchmark: concurrent reads vs serial replay.

Exercises the :mod:`repro.service` layer the way a deployment would: a
:class:`~repro.service.QServer` over one GBCO session, ``workers`` threads
interleaving ranked keyword queries (80%), feedback events (15%, a mix of
base and per-tenant VALID / PREFERRED_OVER annotations) and new-source
registrations (5%, drawn from held-out query-log sources).  Three legs:

* **serial** — the identical operation multiset replayed single-threaded
  through a plain :class:`~repro.api.QService`.  Its wall time is the
  throughput baseline and its counts (answers read, feedback applied,
  registrations) are the deterministic signature the ``--check`` gate
  holds to exact equality.
* **concurrent** — the timed mixed-traffic run.  Every query records the
  snapshot id it was served from, its ranking fingerprint (values, cost,
  producing tree, base tuples) and its latency; the writer lane's applied
  order is captured from ``QServer.write_log``.
* **oracle** — a fresh session serially replays the concurrent leg's
  *actual* applied write order and recomputes, at every write count, the
  answers of each (view, tenant) pair that a concurrent read observed at
  that snapshot.  Any fingerprint mismatch is an isolation violation; the
  run (and the gate) require exactly zero.  This is a stronger property
  than "some serial interleaving": each read must match *the* serial
  execution of the writes its snapshot id names.

The ≥2x concurrent-read-throughput acceptance gate applies only on hosts
with ≥2 CPUs at ``--config large`` (pure-python readers share the GIL on a
single core; the baseline machine has one CPU, so it records the measured
ratio and skips the gate honestly).

Usage::

    PYTHONPATH=src python benchmarks/service_bench.py \
        --config large --out BENCH_service.json
    PYTHONPATH=src python benchmarks/service_bench.py \
        --config small --check benchmarks/BENCH_service_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

# Deterministic counts depend on tie-breaks that follow set/dict iteration
# order; pin the string hash seed (re-exec once) so the gate compares like
# with like across runs and machines — same convention as persist_bench.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api import (  # noqa: E402
    FeedbackRequest,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datasets import build_gbco  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.learning import AnnotationKind  # noqa: E402
from repro.matching import MetadataMatcher  # noqa: E402
from repro.service import QServer  # noqa: E402

CONFIGS = {
    "small": dict(
        rows_per_relation=10, view_entries=(2, 3), workers=4, ops_per_worker=16
    ),
    "large": dict(
        rows_per_relation=30, view_entries=(2, 3, 7), workers=8, ops_per_worker=24
    ),
}

#: Tenants the traffic mix rotates through (``None`` = shared base ranking).
TENANTS: Tuple[Optional[str], ...] = (None, "alice", "bob")

SEED = 7

#: Allowed relative slack on machine-normalized timings (throughput ratio,
#: latency percentiles) against the checked-in baseline.
REGRESSION_TOLERANCE = 0.20

#: Serial-leg wall time below which the throughput-ratio gate is
#: noise-dominated and skipped (the bench-scale convention).
TIMING_GATE_FLOOR_SECONDS = 0.25

#: Absolute latency slack: percentile regressions smaller than this are
#: scheduler jitter, not code.
LATENCY_NOISE_FLOOR_SECONDS = 0.02

#: The acceptance bar on multi-core hosts at the large configuration.
MIN_CONCURRENT_READ_SPEEDUP = 2.0


def _reset_edge_ids() -> None:
    """Restart the process-global edge-id counter between legs so the three
    sessions are byte-comparable (the parity-test convention)."""
    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _fingerprint(answers) -> List:
    """Ranking fingerprint including the producing tree and base tuples —
    distinct Steiner trees frequently project identical (values, cost)."""
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            answer.provenance.query_id if answer.provenance is not None else None,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


# ----------------------------------------------------------------------
# Workload schedule (generated once, executed by every leg)
# ----------------------------------------------------------------------
def build_schedules(spec: Dict[str, object], held_out: List[str]) -> List[List[Dict]]:
    """Per-worker op lists: ~80% query / 15% feedback / 5% register."""
    schedules: List[List[Dict]] = []
    n_views = len(spec["view_entries"])
    for worker in range(spec["workers"]):
        rng = random.Random(SEED * 1000 + worker)
        ops: List[Dict] = []
        for _ in range(spec["ops_per_worker"]):
            roll = rng.random()
            view = rng.randrange(n_views)
            tenant = TENANTS[rng.randrange(len(TENANTS))]
            if roll < 0.80:
                ops.append({"op": "query", "view": view, "tenant": tenant})
            elif roll < 0.95:
                ops.append(
                    {
                        "op": "feedback",
                        "view": view,
                        "tenant": tenant,
                        "index": rng.randrange(10),
                        "prefer": rng.random() < 0.5,
                        "replay": rng.randrange(1, 3),
                    }
                )
            else:
                ops.append({"op": "register"})
        schedules.append(ops)
    return schedules


def merge_round_robin(schedules: List[List[Dict]]) -> List[Dict]:
    merged: List[Dict] = []
    for batch in itertools.zip_longest(*schedules):
        merged.extend(op for op in batch if op is not None)
    return merged


# ----------------------------------------------------------------------
# Session setup shared by all three legs
# ----------------------------------------------------------------------
def build_session(gbco, spec, held_out: List[str]):
    """Fresh bootstrap-aligned session minus held-out sources, with the
    workload's views created (unmaterialized) in a fixed order."""
    _reset_edge_ids()
    service = QService(
        sources=[
            _clone(source) for source in gbco.catalog if source.name not in held_out
        ],
        config=ServiceConfig(top_k=5, top_y=1, write_queue_limit=256),
        backend=None,
    )
    service.bootstrap_alignments()
    view_ids = []
    for entry_index in spec["view_entries"]:
        keywords = tuple(gbco.query_log[entry_index].keywords)
        info = service.create_view(QueryRequest(keywords=keywords), materialize=False)
        view_ids.append(info.view_id)
    return service, view_ids


def _apply_feedback(service, view_id, index, tenant, prefer, replay):
    """The writer-lane feedback closure: choose the annotated answer from
    the *current* serial state so the op is replayable from its descriptor
    alone (choice inside the writer lane = deterministic in write order)."""
    answers = list(service.stream_answers(QueryRequest(view=view_id)))
    if not answers:
        return
    answer = answers[index % len(answers)]
    other = None
    kind = AnnotationKind.VALID
    if prefer:
        other = next(
            (
                candidate
                for candidate in answers
                if candidate.provenance.query_id != answer.provenance.query_id
            ),
            None,
        )
        if other is not None:
            kind = AnnotationKind.PREFERRED_OVER
    service.feedback(
        FeedbackRequest(
            view=view_id,
            answer=answer,
            kind=kind,
            other=other,
            replay=replay,
            tenant=tenant,
        )
    )


def _register_request(gbco, name: str) -> RegisterSourceRequest:
    return RegisterSourceRequest(
        source=_clone(gbco.catalog.source(name)),
        strategy="exhaustive",
        matcher=MetadataMatcher(),
    )


# ----------------------------------------------------------------------
# Leg 1: serial replay (throughput baseline + deterministic counts)
# ----------------------------------------------------------------------
def run_serial(gbco, spec, held_out, schedules) -> Dict[str, object]:
    service, view_ids = build_session(gbco, spec, held_out)
    pending_sources = list(held_out)
    counts = {"queries": 0, "feedback": 0, "registrations": 0, "answers_total": 0}
    start = time.perf_counter()
    for op in merge_round_robin(schedules):
        kind = op["op"]
        if kind == "register" and not pending_sources:
            kind = "query"
            op = {"op": "query", "view": 0, "tenant": None}
        if kind == "query":
            answers = list(
                service.stream_answers(
                    QueryRequest(view=view_ids[op["view"]], tenant=op["tenant"])
                )
            )
            counts["queries"] += 1
            counts["answers_total"] += len(answers)
        elif kind == "feedback":
            _apply_feedback(
                service,
                view_ids[op["view"]],
                op["index"],
                op["tenant"],
                op["prefer"],
                op["replay"],
            )
            counts["feedback"] += 1
        else:
            service.register_source(_register_request(gbco, pending_sources.pop(0)))
            counts["registrations"] += 1
    wall = time.perf_counter() - start
    service.close()
    return {"wall_seconds": round(wall, 4), "counts": counts}


# ----------------------------------------------------------------------
# Leg 2: concurrent mixed traffic through QServer
# ----------------------------------------------------------------------
def run_concurrent(gbco, spec, held_out, schedules) -> Dict[str, object]:
    service, view_ids = build_session(gbco, spec, held_out)
    observations: List[Tuple[int, str, Optional[str], List]] = []
    latencies: List[float] = []
    source_lock = threading.Lock()
    pending_sources = list(held_out)
    record_lock = threading.Lock()
    errors: List[BaseException] = []

    with QServer(service, read_workers=spec["workers"]) as server:

        def run_worker(ops: List[Dict]) -> None:
            for op in ops:
                kind = op["op"]
                if kind == "register":
                    with source_lock:
                        name = pending_sources.pop(0) if pending_sources else None
                    if name is None:
                        kind, op = "query", {"op": "query", "view": 0, "tenant": None}
                    else:
                        server.register(
                            _register_request(gbco, name), tag=f"register:{name}"
                        )
                        continue
                if kind == "query":
                    op_start = time.perf_counter()
                    result = server.query(
                        QueryRequest(view=view_ids[op["view"]], tenant=op["tenant"])
                    )
                    elapsed = time.perf_counter() - op_start
                    with record_lock:
                        latencies.append(elapsed)
                        observations.append(
                            (
                                result.snapshot_id,
                                result.view_id,
                                result.tenant,
                                _fingerprint(result.answers),
                            )
                        )
                else:  # feedback through the writer lane, replayable by tag
                    descriptor = {
                        "view": view_ids[op["view"]],
                        "index": op["index"],
                        "tenant": op["tenant"],
                        "prefer": op["prefer"],
                        "replay": op["replay"],
                    }
                    server.submit_mutation(
                        lambda d=descriptor: _apply_feedback(
                            service,
                            d["view"],
                            d["index"],
                            d["tenant"],
                            d["prefer"],
                            d["replay"],
                        ),
                        kind="feedback",
                        tag=json.dumps(descriptor, sort_keys=True),
                    ).result()

        def guarded(ops: List[Dict]) -> None:
            try:
                run_worker(ops)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        start = time.perf_counter()
        threads = [
            threading.Thread(target=guarded, args=(ops,), name=f"bench-worker-{i}")
            for i, ops in enumerate(schedules)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]

        # Final serial reads extend oracle coverage to the end state.
        for view_id in view_ids:
            for tenant in TENANTS:
                result = server.query(QueryRequest(view=view_id, tenant=tenant))
                observations.append(
                    (
                        result.snapshot_id,
                        result.view_id,
                        result.tenant,
                        _fingerprint(result.answers),
                    )
                )
        stats = server.stats()
        write_log = list(server.write_log)
        if stats.snapshot_id != len(write_log):
            raise AssertionError(
                f"snapshot id {stats.snapshot_id} != applied writes {len(write_log)}"
            )

    service.close()
    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    queries = len(latencies)
    return {
        "wall_seconds": round(wall, 4),
        "read_throughput_per_second": round(queries / wall, 2) if wall else 0.0,
        "latency_p50_seconds": round(percentile(0.50), 4),
        "latency_p95_seconds": round(percentile(0.95), 4),
        "latency_p99_seconds": round(percentile(0.99), 4),
        "counts": {
            "queries": queries,
            "writes_applied": stats.writes_applied,
            "writes_failed": stats.writes_failed,
            "writes_rejected": stats.writes_rejected,
            "snapshots_published": stats.snapshots_published,
            "observations": len(observations),
        },
        "pinned_materializations": stats.pinned_materializations,
        "pinned_carryovers": stats.pinned_carryovers,
        "write_log": write_log,
        "observations": observations,
    }


# ----------------------------------------------------------------------
# Leg 3: isolation oracle (serial replay of the applied write order)
# ----------------------------------------------------------------------
def run_oracle(gbco, spec, held_out, concurrent: Dict[str, object]) -> Dict[str, object]:
    service, _view_ids = build_session(gbco, spec, held_out)
    # Mirror QServer's expansion schedule exactly: all views prepared
    # before snapshot 0 and again after every applied write, so lazy
    # refresh timing cannot skew edge-id allocation between legs.
    service.prepare_views(structural_only=True)

    by_snapshot: Dict[int, List[Tuple[str, Optional[str], List]]] = {}
    for snapshot_id, view_id, tenant, fingerprint in concurrent["observations"]:
        by_snapshot.setdefault(snapshot_id, []).append((view_id, tenant, fingerprint))

    violations = 0
    checked = 0

    def check(snapshot_id: int) -> None:
        nonlocal violations, checked
        for view_id, tenant, observed in by_snapshot.get(snapshot_id, ()):
            expected = _fingerprint(
                service.stream_answers(QueryRequest(view=view_id, tenant=tenant))
            )
            checked += 1
            if expected != observed:
                violations += 1
                print(
                    f"ISOLATION VIOLATION: snapshot {snapshot_id} view {view_id} "
                    f"tenant {tenant!r} diverged from serial replay",
                    file=sys.stderr,
                )

    check(0)
    for write_count, (kind, tag) in enumerate(concurrent["write_log"], start=1):
        if kind == "register":
            service.register_source(_register_request(gbco, tag.split(":", 1)[1]))
        elif kind == "feedback":
            descriptor = json.loads(tag)
            _apply_feedback(
                service,
                descriptor["view"],
                descriptor["index"],
                descriptor["tenant"],
                descriptor["prefer"],
                descriptor["replay"],
            )
        else:
            raise AssertionError(f"unreplayable write kind {kind!r} in write_log")
        service.prepare_views(structural_only=True)
        check(write_count)
    service.close()
    if checked != len(concurrent["observations"]):
        raise AssertionError(
            "oracle coverage hole: "
            f"checked {checked} of {len(concurrent['observations'])} observations "
            "(a read named a snapshot the write log cannot reach)"
        )
    return {"isolation_checks": checked, "isolation_violations": violations}


# ----------------------------------------------------------------------
def run_benchmark(config: str) -> Dict[str, object]:
    spec = CONFIGS[config]
    gbco = build_gbco(rows_per_relation=spec["rows_per_relation"])
    held_out = sorted(
        {
            relation.split(".")[0]
            for entry_index in spec["view_entries"]
            for relation in gbco.query_log[entry_index].new_relations
        }
    )
    schedules = build_schedules(spec, held_out)

    serial = run_serial(gbco, spec, held_out, schedules)
    concurrent = run_concurrent(gbco, spec, held_out, schedules)
    oracle = run_oracle(gbco, spec, held_out, concurrent)
    if oracle["isolation_violations"]:
        raise AssertionError(
            f"{oracle['isolation_violations']} isolation violations — concurrent "
            "reads diverged from the serial replay of the applied write order"
        )

    serial_wall = serial["wall_seconds"]
    concurrent_wall = concurrent["wall_seconds"]
    speedup = round(serial_wall / concurrent_wall, 2) if concurrent_wall else 0.0
    report = {
        "benchmark": "service_mixed_traffic",
        "workload": (
            "gbco serving: concurrent snapshot-isolated queries + tenant/base "
            "feedback + held-out registrations, oracle-replayed for isolation"
        ),
        "config": {
            "name": config,
            "cpu_count": os.cpu_count(),
            **{k: list(v) if isinstance(v, tuple) else v for k, v in spec.items()},
        },
        "serial": serial,
        "concurrent": {
            k: v for k, v in concurrent.items() if k not in ("write_log", "observations")
        },
        "oracle": oracle,
        "concurrent_read_speedup": speedup,
    }
    return report


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures: List[str] = []

    # Deterministic signatures are held to exact equality: drift means the
    # serving layer (or the workload) changed behavior, not performance.
    for leg in ("serial", "concurrent"):
        for metric, old_value in baseline[leg]["counts"].items():
            new_value = report[leg]["counts"].get(metric)
            if new_value != old_value:
                failures.append(
                    f"{leg}.counts.{metric} drifted: baseline {old_value}, got {new_value}"
                )
    for metric in ("isolation_checks", "isolation_violations"):
        if report["oracle"][metric] != baseline["oracle"][metric]:
            failures.append(
                f"oracle.{metric} drifted: baseline {baseline['oracle'][metric]}, "
                f"got {report['oracle'][metric]}"
            )
    if report["oracle"]["isolation_violations"] != 0:
        failures.append("isolation violations must be exactly zero")

    # Machine-normalized throughput ratio (serial and concurrent legs run on
    # the same machine in the same process): allow 20% noise, and skip when
    # the serial leg finishes below the measurement floor.
    old_ratio = baseline["concurrent_read_speedup"]
    new_ratio = report["concurrent_read_speedup"]
    if report["serial"]["wall_seconds"] >= TIMING_GATE_FLOOR_SECONDS:
        if new_ratio < old_ratio * (1.0 - REGRESSION_TOLERANCE):
            failures.append(
                f"concurrent-read speedup regressed >20%: baseline {old_ratio}x, "
                f"got {new_ratio}x"
            )
    else:
        print(
            "note: throughput-ratio gate skipped "
            f"(serial wall {report['serial']['wall_seconds']}s below "
            f"{TIMING_GATE_FLOOR_SECONDS}s noise floor)"
        )

    # Latency percentiles: 20% relative + absolute noise floor.
    for metric in ("latency_p50_seconds", "latency_p95_seconds"):
        old_value = baseline["concurrent"][metric]
        new_value = report["concurrent"][metric]
        if (
            new_value > old_value * (1.0 + REGRESSION_TOLERANCE)
            and new_value - old_value > LATENCY_NOISE_FLOOR_SECONDS
        ):
            failures.append(
                f"concurrent.{metric} regressed >20%: baseline {old_value}s, "
                f"got {new_value}s"
            )

    # The multi-core acceptance gate (large config only; honest skip below).
    if report["config"]["name"] == "large":
        if (os.cpu_count() or 1) >= 2:
            if new_ratio < MIN_CONCURRENT_READ_SPEEDUP:
                failures.append(
                    f"concurrent-read speedup {new_ratio}x below the "
                    f"{MIN_CONCURRENT_READ_SPEEDUP}x multi-core acceptance bar"
                )
        else:
            print(
                "note: >=2x concurrent-read gate skipped (single-CPU host; "
                f"measured ratio {new_ratio}x)"
            )

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        f"baseline check ok: speedup {new_ratio}x, "
        f"p95 {report['concurrent']['latency_p95_seconds']}s, "
        f"{report['oracle']['isolation_checks']} isolation checks, 0 violations"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="large")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_service.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    serial, concurrent = report["serial"], report["concurrent"]
    print(
        f"serial: {serial['wall_seconds']}s for {serial['counts']['queries']} queries"
        f" / {serial['counts']['feedback']} feedback"
        f" / {serial['counts']['registrations']} registrations"
    )
    print(
        f"concurrent: {concurrent['wall_seconds']}s, "
        f"{concurrent['read_throughput_per_second']} reads/s, "
        f"p50 {concurrent['latency_p50_seconds']}s "
        f"p95 {concurrent['latency_p95_seconds']}s "
        f"p99 {concurrent['latency_p99_seconds']}s "
        f"(speedup {report['concurrent_read_speedup']}x)"
    )
    print(
        f"oracle: {report['oracle']['isolation_checks']} reads checked against "
        f"serial replay, {report['oracle']['isolation_violations']} violations"
    )
    if (os.cpu_count() or 1) < 2:
        print(
            "note: >=2x concurrent-read gate not applicable on this host "
            f"(cpu_count={os.cpu_count()}); ratio recorded for multi-core runs"
        )
    print(f"report written to {args.out}")
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
