"""Persistence benchmark: warm-start ``QService.open`` vs cold re-registration.

Builds one full session per storage backend — GBCO base sources, bootstrap
alignment, fig8-style synthetic growth to the target catalog size, a ranked
keyword view — then checkpoints it through :mod:`repro.persist` and times
reopening it from disk.  The *cold* number is what a restarted process had
to pay before durable sessions existed: re-ingest, re-profile, re-match and
re-align everything, then rebuild the view.  The *warm* number is
``QService.open(...)`` plus the first view read.

Parity is asserted, not assumed: the reopened session must produce
byte-identical ranked answers (values, costs, provenance) and identical
deterministic counts (sources, graph nodes/edges, answers) to the live
session that saved them.

With ``--check BASELINE`` the run compares itself against a checked-in
baseline and exits non-zero when (a) any deterministic count drifts, or
(b) the warm-start speedup regresses by more than 20%.  The acceptance
configuration (``--config large``) runs the largest fig8 catalog and must
show warm-start ≥ 5x faster than cold re-registration.

Usage::

    PYTHONPATH=src python benchmarks/persist_bench.py \
        --config large --out BENCH_persist.json
    PYTHONPATH=src python benchmarks/persist_bench.py \
        --config small --check benchmarks/BENCH_persist_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

# Deterministic counts depend on tie-breaks that follow set/dict iteration
# order; pin the string hash seed (re-exec once) so the gate compares like
# with like across runs and machines — same convention as backends_bench.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api import (  # noqa: E402
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datasets import build_gbco, grow_catalog_and_graph  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.matching import MetadataMatcher, ValueOverlapMatcher  # noqa: E402

#: Memory runs first, process-cold: its cold-build number then excludes any
#: warm-cache advantage, and the sqlite leg (which runs second, with warm
#: similarity caches) reports a conservative cold baseline of its own.
BACKENDS = ("memory", "sqlite")

CONFIGS = {
    "small": dict(rows_per_relation=10, fig8_size=30),
    "large": dict(rows_per_relation=10, fig8_size=100),
}

#: Allowed relative slack on the (machine-normalized) warm-start speedup.
REGRESSION_TOLERANCE = 0.20

#: The acceptance bar: warm open must beat cold re-registration by this
#: factor at the large configuration.
LARGE_CONFIG_MIN_SPEEDUP = 5.0


def _reset_edge_ids() -> None:
    """Restart the process-global edge-id counter between backend runs so
    per-backend sessions are byte-comparable (the parity-test convention)."""
    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _answer_fingerprint(answers) -> List:
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _read(service, view_ref):
    return _answer_fingerprint(
        list(service.stream_answers(QueryRequest(view=view_ref)))
    )


def _run_backend(kind: str, rows: int, fig8_size: int, workdir: Path) -> Dict[str, object]:
    """One cold build + save + warm reopen on one backend."""
    _reset_edge_ids()
    gbco = build_gbco(rows_per_relation=rows)
    keywords = tuple(list(gbco.query_log)[0].keywords)
    if kind == "sqlite":
        backend: Optional[str] = f"sqlite:{workdir / 'session.db'}"
        save_path: Optional[Path] = None
        location: Path = workdir / "session.db"
    else:
        backend = None
        save_path = workdir / "session.json"
        location = save_path

    # Cold: everything a restarted process had to redo before durable
    # sessions — ingest, profiling, bootstrap matching, fig8 growth to the
    # target catalog size, and the fig6-style *re-registration* of the query
    # log's new sources (full alignment against the grown graph: the
    # dominant restart cost the paper's Figure 8 measures) — then view
    # construction and the first ranked read.
    new_source_names = sorted(
        {
            relation.split(".")[0]
            for entry in gbco.query_log
            for relation in entry.new_relations
        }
    )
    cold_start = time.perf_counter()
    service = QService(
        sources=[
            _clone(source)
            for source in gbco.catalog
            if source.name not in new_source_names
        ],
        matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=backend,
    )
    service.bootstrap_alignments()
    growth = grow_catalog_and_graph(
        service.catalog, service.graph, target_source_count=fig8_size, seed=fig8_size
    )
    for name in growth.added_sources:
        service.profile_index.index_source(service.catalog.source(name))
    registrations = [
        service.register_source(
            RegisterSourceRequest(
                source=_clone(gbco.catalog.source(name)),
                strategy="exhaustive",
                matcher=MetadataMatcher(),
            )
        )
        for name in new_source_names
    ]
    info = service.create_view(QueryRequest(keywords=keywords))
    cold_setup_seconds = time.perf_counter() - cold_start

    read_start = time.perf_counter()
    live = _read(service, info.view_id)
    cold_read_seconds = time.perf_counter() - read_start

    save_start = time.perf_counter()
    report = service.save(save_path)
    save_seconds = time.perf_counter() - save_start
    counts = {
        "sources": service.catalog.source_count,
        "graph_nodes": service.graph.node_count,
        "graph_edges": service.graph.edge_count,
        "answers": len(live),
        "registrations": len(registrations),
        "attribute_comparisons": sum(
            response.attribute_comparisons for response in registrations
        ),
        "snapshot_version": report.snapshot_version,
    }
    service.close()

    # Warm: reopen from disk (graph, weights, profiles, views restored —
    # no profiling, no matching, no alignment), then the same first read.
    open_start = time.perf_counter()
    reopened = QService.open(location)
    warm_open_seconds = time.perf_counter() - open_start
    read_start = time.perf_counter()
    restored = _read(reopened, info.view_id)
    warm_read_seconds = time.perf_counter() - read_start

    if restored != live:
        raise AssertionError(
            f"parity violated on {kind}: reopened session answered differently"
        )
    if not live:
        raise AssertionError(f"{kind} workload produced no answers — vacuous parity")
    if reopened.catalog.source_count != counts["sources"]:
        raise AssertionError(f"{kind} reopened catalog lost sources")
    reopened.close()

    cold_total = cold_setup_seconds + cold_read_seconds
    warm_total = warm_open_seconds + warm_read_seconds
    return {
        "cold_setup_seconds": round(cold_setup_seconds, 4),
        "cold_read_seconds": round(cold_read_seconds, 4),
        "save_seconds": round(save_seconds, 4),
        "warm_open_seconds": round(warm_open_seconds, 4),
        "warm_read_seconds": round(warm_read_seconds, 4),
        "warm_start_speedup": round(cold_total / warm_total, 2) if warm_total else float("inf"),
        "counts": counts,
        "parity": "byte-identical ranked answers and provenance after reopen",
    }


def run_benchmark(config: str) -> Dict[str, object]:
    spec = CONFIGS[config]
    results: Dict[str, object] = {}
    for kind in BACKENDS:
        workdir = Path(tempfile.mkdtemp(prefix=f"persist-bench-{kind}-"))
        try:
            results[kind] = _run_backend(
                kind, spec["rows_per_relation"], spec["fig8_size"], workdir
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return {
        "benchmark": "persist_warm_start",
        "workload": (
            "gbco bootstrap + fig8 synthetic growth + ranked keyword view, "
            "saved and reopened per storage backend"
        ),
        "config": {
            "name": config,
            "rows_per_relation": spec["rows_per_relation"],
            "fig8_size": spec["fig8_size"],
        },
        "backends": results,
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for kind in BACKENDS:
        base = baseline["backends"].get(kind)
        new = report["backends"].get(kind)
        if base is None or new is None:
            failures.append(f"backend {kind!r} missing from baseline or run")
            continue
        # Deterministic counts are held to exact equality: drift means the
        # restore (or the workload) changed behavior, not performance.
        for metric, old_value in base["counts"].items():
            new_value = new["counts"].get(metric)
            if new_value != old_value:
                failures.append(
                    f"{kind}.counts.{metric} drifted: baseline {old_value}, got {new_value}"
                )
        # The speedup is machine-normalized (cold and warm run on the same
        # machine in the same process); allow 20% noise.
        old_speedup = base["warm_start_speedup"]
        new_speedup = new["warm_start_speedup"]
        if new_speedup < old_speedup * (1.0 - REGRESSION_TOLERANCE):
            failures.append(
                f"{kind} warm-start speedup regressed >20%: "
                f"baseline {old_speedup}x, got {new_speedup}x"
            )
    if report["config"]["name"] == "large":
        for kind in BACKENDS:
            speedup = report["backends"][kind]["warm_start_speedup"]
            if speedup < LARGE_CONFIG_MIN_SPEEDUP:
                failures.append(
                    f"{kind} warm-start speedup {speedup}x below the "
                    f"{LARGE_CONFIG_MIN_SPEEDUP}x acceptance bar"
                )
    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    speedups = {k: report["backends"][k]["warm_start_speedup"] for k in BACKENDS}
    print(f"baseline check ok: warm-start speedups {speedups}, counts exactly match")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="large")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_persist.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for kind in BACKENDS:
        numbers = report["backends"][kind]
        print(
            f"{kind}: cold {numbers['cold_setup_seconds'] + numbers['cold_read_seconds']:.3f}s "
            f"-> warm {numbers['warm_open_seconds'] + numbers['warm_read_seconds']:.3f}s "
            f"({numbers['warm_start_speedup']}x; save {numbers['save_seconds']}s)"
        )
    print(f"report written to {args.out}")
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
