"""Ablation benchmarks for design choices called out in DESIGN.md.

These are not paper figures; they probe two design decisions of the
reproduction:

* **MAD iteration count** — the paper runs 3 iterations; the ablation checks
  that recall has already saturated at 3 iterations (more iterations do not
  find additional gold alignments on the InterPro–GO dataset).
* **Steiner solver choice** — the exact Dreyfus–Wagner solver vs the
  distance-network approximation on the same query graphs: the approximation
  must never be cheaper than the exact optimum, and is expected to be close.
"""

from __future__ import annotations

import pytest

from experiments import build_interpro_go
from repro.core import evaluate_top_y
from repro.graph import QueryGraphBuilder, SearchGraph
from repro.matching import MadConfig, MadMatcher, MetadataMatcher, MatcherEnsemble
from repro.alignment.base import install_associations
from repro.matching.base import Correspondence
from repro.steiner import approximate_steiner_tree, exact_steiner_tree


@pytest.mark.benchmark(group="ablation-mad")
@pytest.mark.parametrize("iterations", [1, 3, 6])
def test_ablation_mad_iterations(benchmark, iterations):
    dataset = build_interpro_go()
    tables = dataset.catalog.all_tables()

    def run():
        matcher = MadMatcher(config=MadConfig(max_iterations=iterations), top_y=2)
        return matcher.match_tables(tables)

    correspondences = benchmark.pedantic(run, rounds=1, iterations=1)
    pr = evaluate_top_y(correspondences, dataset.gold, 2)
    benchmark.extra_info["iterations"] = iterations
    benchmark.extra_info["precision"] = pr.precision
    benchmark.extra_info["recall"] = pr.recall
    if iterations >= 3:
        # The paper's 3-iteration setting already reaches full recall.
        assert pr.recall == 1.0


@pytest.mark.benchmark(group="ablation-steiner")
def test_ablation_exact_vs_approximate_steiner(benchmark):
    dataset = build_interpro_go()
    system_graph = SearchGraph()
    system_graph.add_catalog(dataset.catalog)
    ensemble = MatcherEnsemble([MetadataMatcher(), MadMatcher()], top_y=2)
    alignments = ensemble.match_tables(dataset.catalog.all_tables())
    correspondences = [
        Correspondence(a.source, a.target, confidence, matcher)
        for a in alignments
        for matcher, confidence in a.confidences.items()
    ]
    install_associations(system_graph, correspondences)
    builder = QueryGraphBuilder(dataset.catalog)

    def run():
        ratios = []
        for keywords in dataset.keyword_queries[:5]:
            expanded = builder.expand(system_graph, list(keywords))
            exact = exact_steiner_tree(expanded.graph, expanded.terminals)
            approx = approximate_steiner_tree(expanded.graph, expanded.terminals)
            assert approx.cost >= exact.cost - 1e-9
            ratios.append(approx.cost / exact.cost if exact.cost else 1.0)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["approximation_ratios"] = [round(r, 3) for r in ratios]
    # KMB guarantee: within 2x of optimal; on these graphs it is much closer.
    assert all(ratio <= 2.0 + 1e-9 for ratio in ratios)
