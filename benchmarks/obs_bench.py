"""Observability overhead benchmark: the disabled mode must be (nearly) free.

Builds three identical GBCO serving stacks — same sources, same bootstrap
alignment, same ranked keyword view behind a :class:`repro.service.QServer`
— that differ only in how observability is wired:

* ``noop``     — ``service.obs`` replaced with ``Observability.noop()``
  (NullRegistry, disabled tracer): the true do-nothing floor.
* ``disabled`` — ``ServiceConfig(observability=False)``: the supported
  off switch users actually flip.  Counters still move on the real
  registry; tracing, explain and slow-query logging are bypassed.
* ``enabled``  — the default: full span trees, decision log, per-stage
  histograms.

The timed workload is the serving hot path: repeated cached reads of the
pinned view through ``QServer.query``.  Legs are interleaved round-robin
and each leg's cost is the *minimum* across rounds, so a GC pause or a
noisy neighbour in one round cannot fail the gate.

The acceptance gate (enforced with ``--check``): the disabled-mode leg may
cost at most 3% more than the noop floor (plus an absolute noise floor for
very fast runs).  Answer parity across all three legs is asserted — the
observability layer must never change what a read returns.

Usage::

    PYTHONPATH=src python benchmarks/obs_bench.py \
        --config small --out benchmarks/BENCH_obs.json
    PYTHONPATH=src python benchmarks/obs_bench.py \
        --config small --check benchmarks/BENCH_obs_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

# Deterministic counts depend on tie-breaks that follow set/dict iteration
# order; pin the string hash seed (re-exec once) so the gate compares like
# with like across runs and machines — same convention as backends_bench.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api import QService, QueryRequest, ServiceConfig  # noqa: E402
from repro.datasets import build_gbco  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.service import QServer  # noqa: E402

LEGS = ("noop", "disabled", "enabled")

CONFIGS = {
    "small": dict(rows_per_relation=30, reads_per_round=2000, rounds=3),
    "large": dict(rows_per_relation=30, reads_per_round=10000, rounds=5),
}

#: The acceptance bar: disabled-mode observability may add at most this
#: fraction on top of the no-observability floor.
MAX_DISABLED_OVERHEAD = 0.03

#: Absolute slack for very fast runs where a single scheduler hiccup
#: exceeds 3% of the whole leg.
NOISE_FLOOR_SECONDS = 0.05

#: Allowed relative drift on the enabled-mode overhead ratio vs baseline.
REGRESSION_TOLERANCE = 0.20


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _answer_fingerprint(answers) -> List:
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _build_leg(leg: str, rows: int):
    """One full serving stack for one observability mode."""
    gbco = build_gbco(rows_per_relation=rows)
    keywords = tuple(list(gbco.query_log)[0].keywords)
    config = ServiceConfig(
        top_k=5,
        top_y=1,
        observability=(leg == "enabled"),
    )
    service = QService(
        sources=[_clone(source) for source in gbco.catalog],
        config=config,
    )
    service.bootstrap_alignments()
    if leg == "noop":
        # Replace the whole bundle before the server binds it: NullRegistry
        # instruments, disabled tracer — the true do-nothing floor.
        service.obs = Observability.noop()
    server = QServer(service)
    # Prime: the first read materializes the view into the snapshot slot so
    # every timed read afterwards is a hot cached replay.
    first = server.query(QueryRequest(keywords=keywords))
    return server, first


def run_benchmark(config: str) -> Dict[str, object]:
    spec = CONFIGS[config]
    rows = spec["rows_per_relation"]
    reads = spec["reads_per_round"]
    rounds = spec["rounds"]

    stacks = {}
    fingerprints = {}
    view_ids = {}
    for leg in LEGS:
        server, first = _build_leg(leg, rows)
        stacks[leg] = server
        fingerprints[leg] = _answer_fingerprint(first.answers)
        view_ids[leg] = first.view_id

    # Parity: observability must never change what a read returns.
    if not fingerprints["enabled"]:
        raise AssertionError("workload produced no answers — vacuous parity")
    for leg in ("noop", "disabled"):
        if fingerprints[leg] != fingerprints["enabled"]:
            raise AssertionError(
                f"parity violated: {leg} leg answered differently from enabled"
            )

    # Interleaved min-of-rounds timing over the cached-read hot path.
    best: Dict[str, float] = {leg: float("inf") for leg in LEGS}
    for _ in range(rounds):
        for leg in LEGS:
            server = stacks[leg]
            request = QueryRequest(view=view_ids[leg])
            start = time.perf_counter()
            for _ in range(reads):
                server.query(request)
            elapsed = time.perf_counter() - start
            best[leg] = min(best[leg], elapsed)

    enabled_service = stacks["enabled"]._service
    total_reads = 1 + rounds * reads  # prime + timed, per leg
    counts = {
        "answers": len(fingerprints["enabled"]),
        "reads_per_leg": total_reads,
        "enabled_reads_counted": int(
            enabled_service.obs.registry.value("q_reads_total")
        ),
        "disabled_reads_counted": int(
            stacks["disabled"]._service.obs.registry.value("q_reads_total")
        ),
        "enabled_decisions": len(enabled_service.obs.decisions),
        "enabled_paths": sorted(
            {
                record.path
                for record in enabled_service.obs.decisions.records()
            }
        ),
        "parity": "identical ranked answers across all three legs",
    }
    # The decision log is bounded; it retains min(decision_log_size, reads).
    expected_decisions = min(
        enabled_service.config.decision_log_size, total_reads
    )
    if counts["enabled_decisions"] != expected_decisions:
        raise AssertionError(
            f"decision log held {counts['enabled_decisions']} records, "
            f"expected {expected_decisions}"
        )
    if counts["enabled_reads_counted"] != total_reads:
        raise AssertionError(
            f"enabled leg counted {counts['enabled_reads_counted']} reads, "
            f"expected {total_reads}"
        )
    for leg in LEGS:
        stacks[leg].close()

    noop_s = best["noop"]
    disabled_s = best["disabled"]
    enabled_s = best["enabled"]
    budget = max(MAX_DISABLED_OVERHEAD * noop_s, NOISE_FLOOR_SECONDS)
    return {
        "benchmark": "obs_overhead",
        "workload": (
            "gbco ranked keyword view, hot cached QServer reads, "
            "legs interleaved round-robin, min-of-rounds timing"
        ),
        "config": {
            "name": config,
            "rows_per_relation": rows,
            "reads_per_round": reads,
            "rounds": rounds,
        },
        "legs": {
            "noop_seconds": round(noop_s, 4),
            "disabled_seconds": round(disabled_s, 4),
            "enabled_seconds": round(enabled_s, 4),
        },
        "overhead": {
            "disabled_vs_noop_seconds": round(disabled_s - noop_s, 4),
            "disabled_vs_noop_fraction": round(
                (disabled_s - noop_s) / noop_s, 4
            )
            if noop_s
            else 0.0,
            "enabled_vs_noop_fraction": round((enabled_s - noop_s) / noop_s, 4)
            if noop_s
            else 0.0,
            "budget_seconds": round(budget, 4),
            "gate": (
                f"disabled - noop must stay within "
                f"max({MAX_DISABLED_OVERHEAD:.0%} of noop, "
                f"{NOISE_FLOOR_SECONDS}s)"
            ),
            "gate_passed": (disabled_s - noop_s) <= budget,
        },
        "counts": counts,
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    # Deterministic counts are held to exact equality: drift means the
    # observability wiring (or the workload) changed behavior.
    for metric, old_value in baseline["counts"].items():
        new_value = report["counts"].get(metric)
        if new_value != old_value:
            failures.append(
                f"counts.{metric} drifted: baseline {old_value!r}, got {new_value!r}"
            )
    # The hard acceptance gate, machine-normalized (all legs run
    # interleaved in the same process on the same machine).
    overhead = report["overhead"]
    if not overhead["gate_passed"]:
        failures.append(
            f"disabled-mode overhead {overhead['disabled_vs_noop_seconds']}s "
            f"exceeds budget {overhead['budget_seconds']}s "
            f"({overhead['disabled_vs_noop_fraction']:+.1%} vs noop floor)"
        )
    # Enabled-mode cost is informational but shouldn't silently balloon:
    # allow baseline ratio + 20 percentage points of slack.
    old_enabled = baseline["overhead"]["enabled_vs_noop_fraction"]
    new_enabled = overhead["enabled_vs_noop_fraction"]
    if new_enabled > old_enabled + REGRESSION_TOLERANCE:
        failures.append(
            f"enabled-mode overhead grew: baseline {old_enabled:+.1%}, "
            f"got {new_enabled:+.1%} (allowed slack {REGRESSION_TOLERANCE:.0%})"
        )
    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        f"baseline check ok: disabled overhead "
        f"{overhead['disabled_vs_noop_fraction']:+.1%} within gate, "
        f"counts exactly match"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_obs.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    legs = report["legs"]
    overhead = report["overhead"]
    print(
        f"noop {legs['noop_seconds']}s | disabled {legs['disabled_seconds']}s "
        f"({overhead['disabled_vs_noop_fraction']:+.1%}) | "
        f"enabled {legs['enabled_seconds']}s "
        f"({overhead['enabled_vs_noop_fraction']:+.1%})"
    )
    print(f"report written to {args.out}")
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
