"""Figure 10 — precision/recall of COMA++-style matcher, MAD, and trained Q.

Paper (Figure 10): Q, which combines both matchers and is trained from
feedback on 10 keyword queries (replayed), achieves both better precision
and better recall than either matcher alone.
"""

from __future__ import annotations

import pytest

from experiments import run_fig10_experiment


def best_precision_at(points, recall_level):
    eligible = [p for r, p in points if r >= recall_level - 1e-9]
    return max(eligible) if eligible else 0.0


@pytest.mark.benchmark(group="fig10")
def test_fig10_pr_curves(benchmark):
    curves = benchmark.pedantic(run_fig10_experiment, kwargs=dict(repetitions=4), rounds=1, iterations=1)

    # Q should dominate (or match) each individual matcher at mid/high recall.
    for recall_level in (0.5, 0.75, 0.875):
        q_precision = best_precision_at(curves["q"], recall_level)
        assert q_precision >= best_precision_at(curves["metadata"], recall_level) - 1e-9
        assert q_precision >= best_precision_at(curves["mad"], recall_level) - 1e-9

    # Trained Q reaches perfect precision at 50% recall and high precision at 75%.
    assert best_precision_at(curves["q"], 0.5) == pytest.approx(1.0)
    assert best_precision_at(curves["q"], 0.75) >= 0.85
    # And it still reaches full recall.
    assert max(r for r, _ in curves["q"]) == pytest.approx(1.0)

    benchmark.extra_info["precision_at_recall"] = {
        system: {
            str(level): round(best_precision_at(points, level), 3)
            for level in (0.25, 0.5, 0.75, 0.875, 1.0)
        }
        for system, points in curves.items()
    }
