"""Figure 6 — running time of the aligner strategies (metadata matcher as BASEMATCHER).

Paper (Figure 6): VIEWBASEDALIGNER and PREFERENTIALALIGNER significantly
reduce running time versus EXHAUSTIVE (about 60% savings), averaged over the
introduction of 40 new sources.  The benchmark replays a subset of the
query-log trials (the full 16-trial run is available through
``harness.py fig6``) and asserts the ordering.
"""

from __future__ import annotations

import pytest

from experiments import QUERY_LOG, run_gbco_alignment_experiment


@pytest.mark.benchmark(group="fig6")
def test_fig6_aligner_runtime(benchmark):
    measurements = benchmark.pedantic(
        run_gbco_alignment_experiment,
        kwargs=dict(rows_per_relation=20, trials=QUERY_LOG[:6]),
        rounds=1,
        iterations=1,
    )
    exhaustive = measurements["exhaustive"]
    view_based = measurements["view_based"]
    preferential = measurements["preferential"]

    # The information-need-driven strategies must be cheaper than EXHAUSTIVE.
    assert view_based.avg_time_ms < exhaustive.avg_time_ms
    assert preferential.avg_time_ms < exhaustive.avg_time_ms

    benchmark.extra_info["avg_time_ms"] = {
        name: round(m.avg_time_ms, 2) for name, m in measurements.items()
    }
    benchmark.extra_info["introductions"] = exhaustive.introductions
