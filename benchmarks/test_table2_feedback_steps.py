"""Table 2 — number of feedback steps needed for perfect precision at each recall level.

Paper (Table 2): perfect precision is obtained after very few feedback steps
(1 step for recall 12.5%, 2 steps for every other level including 100%).
Our learner needs more steps at the highest recall levels (see
EXPERIMENTS.md), so the assertion focuses on the low/medium recall levels
and on the monotone structure of the result.
"""

from __future__ import annotations

import pytest

from experiments import run_table2_experiment


@pytest.mark.benchmark(group="table2")
def test_table2_feedback_steps(benchmark):
    steps = benchmark.pedantic(
        run_table2_experiment, kwargs=dict(num_queries=10, repetitions=4), rounds=1, iterations=1
    )

    # Perfect precision at low recall requires only a handful of steps.
    assert steps[0.125] is not None and steps[0.125] <= 5
    assert steps[0.25] is not None and steps[0.25] <= 10
    assert steps[0.5] is not None and steps[0.5] <= 20
    # Precision-1 at 75% recall should be reached within the 40-step budget.
    assert steps[0.75] is not None

    benchmark.extra_info["steps_to_precision_1"] = {
        str(level): value for level, value in steps.items()
    }
