"""Benchmark suite configuration.

Adds ``src`` (the library) and the benchmarks directory itself (for the
shared ``experiments`` module) to ``sys.path`` so the suite runs without an
installed package.
"""

from __future__ import annotations

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)
