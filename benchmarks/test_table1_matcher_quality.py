"""Table 1 — precision / recall / F-measure of the metadata matcher vs MAD.

Paper (Table 1): COMA++ reaches at most 87.5% recall even at Y=5 (62.5% at
Y=1), while MAD reaches 87.5% recall at Y=1 and 100% recall from Y=2 on.
The benchmark regenerates the same rows with our matchers and asserts the
qualitative pattern.
"""

from __future__ import annotations

import pytest

from experiments import run_table1_experiment


def _rows_by_key(rows):
    return {(row["Y"], row["system"]): row for row in rows}


@pytest.mark.benchmark(group="table1")
def test_table1_matcher_quality(benchmark):
    rows = benchmark.pedantic(run_table1_experiment, rounds=1, iterations=1)
    by_key = _rows_by_key(rows)

    # MAD reaches full recall at Y=2 (and stays there at Y=5).
    assert by_key[(2, "mad")]["recall"] == 100.0
    assert by_key[(5, "mad")]["recall"] == 100.0
    # The metadata-only matcher never reaches full recall (the go_id/acc
    # alignment is invisible at the schema level).
    for y in (1, 2, 5):
        assert by_key[(y, "metadata")]["recall"] < 100.0
    # MAD recall dominates the metadata matcher at every Y.
    for y in (1, 2, 5):
        assert by_key[(y, "mad")]["recall"] >= by_key[(y, "metadata")]["recall"]

    benchmark.extra_info["rows"] = rows
