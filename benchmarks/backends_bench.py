"""Storage-backend benchmark: memory vs SQLite on one full service workload.

Replays an identical end-to-end workload — bulk source ingest, bootstrap
alignment, new-source registrations from the GBCO query log, and ranked
keyword-view query reads — once per storage backend, asserts cross-backend
parity (byte-identical ranked answers and registration correspondences),
and emits ``BENCH_backends.json`` comparing registration and query wall
time across backends.  A fig8-style scaling replay is also run per backend
(`experiments.run_scaling_experiment(backend=...)`) so the Figure 8 numbers
can be reported per storage layer.

With ``--check BASELINE`` the run compares itself against a checked-in
baseline and exits non-zero when (a) any deterministic count drifts —
answers produced, registrations, attribute comparisons — or (b) the
**memory** backend regresses by more than 20% on registration or query
wall time against the baseline (the same tolerance as the registration
benchmark's gate; the SQLite backend is reported but not gated — it trades
latency for durability/pushdown by design).

Usage::

    PYTHONPATH=src python benchmarks/backends_bench.py \
        --config small --out BENCH_backends.json \
        --check benchmarks/BENCH_backends_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

# The workload's answer totals depend on tie-breaks that follow set/dict
# iteration order, which Python randomizes per process via the string hash
# seed.  Pin it (re-exec once) so the deterministic-count gate is comparing
# like with like across runs and machines.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from experiments import run_scaling_experiment  # noqa: E402

from repro.api import (  # noqa: E402
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datasets import build_gbco  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.matching import MetadataMatcher, ValueOverlapMatcher  # noqa: E402

BACKENDS = ("memory", "sqlite")

#: SQLite runs first: process-global similarity caches (name trigrams, pair
#: memos) warm up during the first run, so the gated memory backend gets the
#: warm-cache advantage and the reported SQLite-vs-memory relative cost is
#: conservative — the same convention as the registration benchmark.
RUN_ORDER = ("sqlite", "memory")

CONFIGS = {
    "small": dict(rows_per_relation=15, trial_count=6, fig8_sizes=(18, 40)),
    "large": dict(rows_per_relation=30, trial_count=None, fig8_sizes=(18, 100)),
}

#: Allowed relative slack when gating the memory backend against a baseline.
REGRESSION_TOLERANCE = 0.20


def _reset_edge_ids() -> None:
    """Restart the process-global edge-id counter (see the parity tests).

    Independent sessions in one process otherwise number their graphs
    differently, which shifts equal-cost tie-breaks — resetting makes the
    per-backend runs byte-comparable.
    """
    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _answer_fingerprint(answers) -> List:
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _run_backend(kind: str, rows: int, trials) -> Dict[str, object]:
    """One full workload on one backend; returns timings + parity artifacts."""
    _reset_edge_ids()
    gbco = build_gbco(rows_per_relation=rows)
    new_source_names = sorted(
        {
            relation.split(".")[0]
            for entry in trials
            for relation in entry.new_relations
        }
    )

    wall_start = time.perf_counter()
    start = time.perf_counter()
    service = QService(
        sources=[
            _clone(source)
            for source in gbco.catalog
            if source.name not in new_source_names
        ],
        matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=kind,
    )
    service.bootstrap_alignments()
    ingest_seconds = time.perf_counter() - start

    start = time.perf_counter()
    correspondences = []
    comparisons = 0
    for name in new_source_names:
        response = service.register_source(
            RegisterSourceRequest(
                source=_clone(gbco.catalog.source(name)),
                strategy="exhaustive",
                matcher=MetadataMatcher(),
            )
        )
        comparisons += response.attribute_comparisons
        correspondences.append(
            sorted(
                (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
                for c in response.alignment.correspondences
            )
        )
    registration_seconds = time.perf_counter() - start

    start = time.perf_counter()
    answers = []
    for entry in trials:
        info = service.create_view(QueryRequest(keywords=tuple(entry.keywords)))
        answers.append(_answer_fingerprint(service.view(info.view_id).answers()))
    query_seconds = time.perf_counter() - start
    stats = service.stats()
    wall_seconds = time.perf_counter() - wall_start
    service.close()

    return {
        "timings": {
            "ingest_seconds": round(ingest_seconds, 4),
            "registration_seconds": round(registration_seconds, 4),
            "query_seconds": round(query_seconds, 4),
            "wall_seconds": round(wall_seconds, 4),
        },
        "counts": {
            "registrations": len(new_source_names),
            "attribute_comparisons": comparisons,
            "views": len(answers),
            "answers_total": sum(len(a) for a in answers),
            "storage_bytes": stats.storage_bytes,
        },
        "backend_reported": stats.backend,
        "_answers": answers,
        "_correspondences": correspondences,
    }


def _assert_parity(runs: Dict[str, Dict[str, object]]) -> None:
    """Byte-identical ranked answers + correspondences across all backends."""
    reference_kind = BACKENDS[0]
    reference = runs[reference_kind]
    for kind in BACKENDS[1:]:
        run = runs[kind]
        if run["_answers"] != reference["_answers"]:
            raise AssertionError(
                f"answer parity violated: {kind!r} returned different ranked "
                f"answers than {reference_kind!r}"
            )
        if run["_correspondences"] != reference["_correspondences"]:
            raise AssertionError(
                f"correspondence parity violated between {kind!r} and {reference_kind!r}"
            )


def _run_fig8(kind: str, sizes, trials) -> Dict[str, object]:
    start = time.perf_counter()
    results = run_scaling_experiment(
        graph_sizes=sizes, rows_per_relation=10, trials=trials, backend=kind
    )
    return {
        "wall_seconds": round(time.perf_counter() - start, 4),
        "avg_comparisons": {
            str(size): {name: round(value, 2) for name, value in row.items()}
            for size, row in results.items()
        },
    }


def run_benchmark(
    config: str, rows: Optional[int] = None, trial_count: Optional[int] = None
) -> Dict[str, object]:
    spec = dict(CONFIGS[config])
    if rows is not None:
        spec["rows_per_relation"] = rows
    if trial_count is not None:
        spec["trial_count"] = trial_count
    gbco = build_gbco(rows_per_relation=spec["rows_per_relation"])
    trials = list(gbco.query_log)
    if spec["trial_count"] is not None:
        trials = trials[: spec["trial_count"]]

    runs = {kind: _run_backend(kind, spec["rows_per_relation"], trials) for kind in RUN_ORDER}
    runs = {kind: runs[kind] for kind in BACKENDS}  # report in canonical order
    _assert_parity(runs)
    fig8_trials = trials[:2]
    fig8 = {kind: _run_fig8(kind, spec["fig8_sizes"], fig8_trials) for kind in BACKENDS}
    # The comparison counts of the fig8 replay are storage-independent.
    if any(
        fig8[kind]["avg_comparisons"] != fig8[BACKENDS[0]]["avg_comparisons"]
        for kind in BACKENDS[1:]
    ):
        raise AssertionError("fig8 comparison counts drifted across backends")

    def _ratio(a: float, b: float) -> Optional[float]:
        # Ratios over sub-10ms denominators are noise, not signal.
        return round(a / b, 2) if b >= 0.01 else None

    memory, sqlite = runs["memory"], runs["sqlite"]
    return {
        "benchmark": "storage_backends",
        "workload": "gbco ingest + bootstrap + fig6 registrations + ranked view reads",
        "config": {
            "name": config,
            "rows_per_relation": spec["rows_per_relation"],
            "trials": len(trials),
        },
        "parity": "identical ranked answers and registration correspondences",
        "backends": {
            kind: {key: value for key, value in run.items() if not key.startswith("_")}
            for kind, run in runs.items()
        },
        "relative_cost_sqlite_vs_memory": {
            metric: _ratio(
                sqlite["timings"][f"{metric}_seconds"],
                memory["timings"][f"{metric}_seconds"],
            )
            for metric in ("ingest", "registration", "query", "wall")
        },
        "fig8_per_backend": fig8,
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    """Compare ``report`` to a checked-in baseline; return a process exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures = []

    # Deterministic counts: any drift means behaviour changed, not speed.
    for kind in BACKENDS:
        base_counts = baseline["backends"][kind]["counts"]
        new_counts = report["backends"][kind]["counts"]
        for metric in ("registrations", "attribute_comparisons", "views", "answers_total"):
            if new_counts[metric] != base_counts[metric]:
                failures.append(
                    f"{kind}.{metric} drifted: baseline {base_counts[metric]}, "
                    f"got {new_counts[metric]}"
                )

    # Wall-time gate on the memory backend only (the seed-equivalent fast
    # path must not regress >20%; absolute times vary with the host, so the
    # baseline should be refreshed when hardware changes materially).
    base_timings = baseline["backends"]["memory"]["timings"]
    new_timings = report["backends"]["memory"]["timings"]
    for metric in ("registration_seconds", "query_seconds"):
        allowed = base_timings[metric] * (1.0 + REGRESSION_TOLERANCE)
        if new_timings[metric] > allowed:
            failures.append(
                f"memory backend {metric} regressed >20%: baseline "
                f"{base_timings[metric]}s, got {new_timings[metric]}s"
            )

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        "baseline check ok: deterministic counts match; memory backend "
        f"registration {new_timings['registration_seconds']}s "
        f"(baseline {base_timings['registration_seconds']}s), "
        f"query {new_timings['query_seconds']}s "
        f"(baseline {base_timings['query_seconds']}s)"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small")
    parser.add_argument("--rows", type=int, default=None, help="rows per relation override")
    parser.add_argument("--trials", type=int, default=None, help="trial count override")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_backends.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config, rows=args.rows, trial_count=args.trials)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for kind in BACKENDS:
        timings = report["backends"][kind]["timings"]
        print(
            f"  {kind:>7}: ingest {timings['ingest_seconds']}s, "
            f"registration {timings['registration_seconds']}s, "
            f"query {timings['query_seconds']}s"
        )
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
