"""Figure 12 — average gold vs non-gold edge cost as feedback accumulates.

Paper (Figure 12): Q assigns lower (better) costs on average to gold edges
than to non-gold edges, and the gap increases with more feedback (steps
11-40 replay the first 10 steps).
"""

from __future__ import annotations

import pytest

from experiments import run_fig12_experiment


@pytest.mark.benchmark(group="fig12")
def test_fig12_edge_cost_gap(benchmark):
    history = benchmark.pedantic(
        run_fig12_experiment, kwargs=dict(num_queries=10, repetitions=4), rounds=1, iterations=1
    )
    assert history, "feedback steps should have been recorded"

    first, last = history[0], history[-1]
    first_gap = first["non_gold_avg_cost"] - first["gold_avg_cost"]
    last_gap = last["non_gold_avg_cost"] - last["gold_avg_cost"]

    # Gold edges end up cheaper on average than non-gold edges...
    assert last["gold_avg_cost"] < last["non_gold_avg_cost"]
    # ...and the separation grows as feedback accumulates.
    assert last_gap > first_gap

    benchmark.extra_info["steps"] = len(history)
    benchmark.extra_info["first_step"] = {k: round(v, 3) for k, v in first.items()}
    benchmark.extra_info["last_step"] = {k: round(v, 3) for k, v in last.items()}
