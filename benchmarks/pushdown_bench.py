"""Rank-aware pushdown benchmark: windowed SQL ranked reads vs the Python union.

Replays one GBCO workload — ingest, bootstrap alignment, fig6 keyword views
— and then serves the same ranked reads three ways:

* ``sqlite_windowed`` — the windowed ranked-union pushdown: every cold view
  read is one ``ROW_NUMBER()``-windowed ``UNION ALL`` SELECT inside SQLite,
  and every page read is one ``LIMIT``/``OFFSET`` window;
* ``sqlite_python`` — the same SQLite catalog with ``REPRO_WINDOW_PUSHDOWN``
  off: per-query execution plus the Python
  :func:`~repro.engine.executor.ranked_union`;
* ``memory`` — the seed path, everything in Python.

Parity is asserted, not sampled: all three modes must produce byte-identical
ranked answers (values, costs, provenance, order) and byte-identical pages.
A warm-open replay is also measured: the session is saved into the catalog
database and reopened, asserting the posting tables made the reopen skip the
in-memory posting rebuild (``posting_builds == 0`` and ``posting_syncs == 0``
— the PR's acceptance counters).

With ``--check BASELINE`` the run exits non-zero when any deterministic
count drifts, when a parity or warm-open assertion fails, or when the
**windowed** ranked-read wall time regresses more than 20% against the
baseline (the mode this PR optimizes; the Python modes are reported as the
comparison but not gated).

Usage::

    PYTHONPATH=src python benchmarks/pushdown_bench.py \
        --config small --out BENCH_pushdown.json \
        --check benchmarks/BENCH_pushdown_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

# Pin the string hash seed (re-exec once) so tie-breaks that follow set/dict
# iteration order are identical across runs — the deterministic-count gate
# and the cross-mode parity assertions depend on it.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api import QService, QueryRequest, ServiceConfig  # noqa: E402
from repro.datasets import build_gbco  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.matching import ValueOverlapMatcher  # noqa: E402

MODES = ("memory", "sqlite_python", "sqlite_windowed")

#: The gated windowed mode runs last so the process-global caches (name
#: trigrams, pair memos) are warm for all modes that are compared on time —
#: the reported windowed-vs-python speedup is therefore conservative.
RUN_ORDER = ("memory", "sqlite_python", "sqlite_windowed")

CONFIGS = {
    "small": dict(rows_per_relation=12, trial_count=4, read_reps=3, page_size=5),
    "large": dict(rows_per_relation=60, trial_count=None, read_reps=10, page_size=10),
}

#: Allowed relative slack when gating the windowed mode against a baseline,
#: plus an absolute floor so sub-100ms metrics are not gated on scheduler
#: noise (the small CI config reads take tens of milliseconds).
REGRESSION_TOLERANCE = 0.20
NOISE_FLOOR_SECONDS = 0.05


def _reset_edge_ids() -> None:
    """Restart the process-global edge-id counter.

    Independent sessions in one process otherwise number their graphs
    differently, which shifts equal-cost tie-breaks — resetting makes the
    per-mode runs byte-comparable.
    """
    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _answer_fingerprint(answers) -> List:
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _build_service(mode: str, rows: int, db_path: Optional[Path] = None) -> QService:
    _reset_edge_ids()
    gbco = build_gbco(rows_per_relation=rows)
    backend = "memory" if mode == "memory" else f"sqlite:{db_path or ':memory:'}"
    service = QService(
        sources=[_clone(source) for source in gbco.catalog],
        matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=backend,
    )
    service.bootstrap_alignments()
    return service


def _run_mode(mode: str, spec: Dict[str, object], trials) -> Dict[str, object]:
    """Build the catalog once, then time the ranked read workloads."""
    gate_env = os.environ.pop("REPRO_WINDOW_PUSHDOWN", None)
    if mode == "sqlite_python":
        os.environ["REPRO_WINDOW_PUSHDOWN"] = "off"
    try:
        service = _build_service(mode, spec["rows_per_relation"])
        views = []
        for entry in trials:
            info = service.create_view(
                QueryRequest(keywords=tuple(entry.keywords)), materialize=False
            )
            views.append(service.view(info.view_id))

        # Cold ranked reads: every repetition drops the per-view answer
        # cache, so each read re-executes — one windowed SELECT per view in
        # the windowed mode, per-query execution + Python merge otherwise.
        start = time.perf_counter()
        answers = []
        for rep in range(spec["read_reps"]):
            fingerprints = []
            for view in views:
                view.invalidate_cache()
                fingerprints.append(_answer_fingerprint(view.answers()))
            answers = fingerprints
        cold_read_seconds = time.perf_counter() - start

        # Cold page reads: the serving scenario this PR targets — a random
        # LIMIT/OFFSET page with no warm answer cache.  The windowed mode
        # answers it with one small windowed SELECT; the Python modes must
        # execute the whole union first, then slice.
        page_size = spec["page_size"]
        start = time.perf_counter()
        pages = []
        pages_read = 0
        for rep in range(spec["read_reps"]):
            for view, full in zip(views, answers):
                view.invalidate_cache()
                offset = (rep * page_size) % max(len(full), 1)
                page = view.answers_page(limit=page_size, offset=offset)
                pages.append(_answer_fingerprint(page))
                pages_read += 1
        paged_read_seconds = time.perf_counter() - start

        stats = service.stats()
        service.close()
        return {
            "timings": {
                "cold_read_seconds": round(cold_read_seconds, 4),
                "paged_read_seconds": round(paged_read_seconds, 4),
            },
            "counts": {
                "views": len(views),
                "answers_total": sum(len(a) for a in answers),
                "pages_read": pages_read,
                "pushdown_union_queries": stats.pushdown_union_queries,
                "posting_syncs": stats.posting_syncs,
            },
            "backend_reported": stats.backend,
            "_answers": answers,
            "_pages": pages,
        }
    finally:
        os.environ.pop("REPRO_WINDOW_PUSHDOWN", None)
        if gate_env is not None:
            os.environ["REPRO_WINDOW_PUSHDOWN"] = gate_env


def _assert_parity(runs: Dict[str, Dict[str, object]]) -> None:
    """Byte-identical answers and pages across all three modes."""
    reference = runs[MODES[0]]
    for mode in MODES[1:]:
        if runs[mode]["_answers"] != reference["_answers"]:
            raise AssertionError(
                f"ranked-answer parity violated between {mode!r} and {MODES[0]!r}"
            )
        if runs[mode]["_pages"] != reference["_pages"]:
            raise AssertionError(
                f"page parity violated between {mode!r} and {MODES[0]!r}"
            )
    if not any(any(run for run in mode_answers) for mode_answers in reference["_answers"]):
        raise AssertionError("workload produced no answers — parity is vacuous")
    windowed = runs["sqlite_windowed"]["counts"]["pushdown_union_queries"]
    if windowed == 0:
        raise AssertionError(
            "windowed mode served no union through the backend — the "
            "benchmark is not measuring the pushdown (old SQLite build?)"
        )
    if runs["sqlite_python"]["counts"]["pushdown_union_queries"] != 0:
        raise AssertionError("REPRO_WINDOW_PUSHDOWN=off leaked a windowed read")


def _run_warm_open(spec: Dict[str, object], trials) -> Dict[str, object]:
    """Save a SQLite session, reopen it, assert the posting rebuild is skipped."""
    with tempfile.TemporaryDirectory() as tmp:
        db = Path(tmp) / "catalog.db"
        start = time.perf_counter()
        service = _build_service("sqlite_windowed", spec["rows_per_relation"], db)
        info = service.create_view(QueryRequest(keywords=tuple(trials[0].keywords)))
        cold = _answer_fingerprint(service.view(info.view_id).answers())
        cold_seconds = time.perf_counter() - start
        cold_syncs = service.stats().posting_syncs
        service.save()
        service.close()

        _reset_edge_ids()
        start = time.perf_counter()
        reopened = QService.open(db)
        warm = _answer_fingerprint(reopened.view(info.view_id).answers())
        warm_seconds = time.perf_counter() - start
        stats = reopened.stats()
        reopened.close()

    if warm != cold or not warm:
        raise AssertionError("warm-open answers diverged from the saving session")
    if stats.posting_builds != 0:
        raise AssertionError(
            f"warm open rebuilt postings in memory ({stats.posting_builds} builds)"
        )
    if stats.posting_syncs != 0:
        raise AssertionError(
            f"warm open rewrote current posting tables ({stats.posting_syncs} syncs)"
        )
    return {
        "cold_build_seconds": round(cold_seconds, 4),
        "warm_open_seconds": round(warm_seconds, 4),
        "cold_posting_syncs": cold_syncs,
        "warm_posting_builds": stats.posting_builds,
        "warm_posting_syncs": stats.posting_syncs,
        "answers": len(warm),
    }


def run_benchmark(
    config: str, rows: Optional[int] = None, trial_count: Optional[int] = None
) -> Dict[str, object]:
    spec = dict(CONFIGS[config])
    if rows is not None:
        spec["rows_per_relation"] = rows
    if trial_count is not None:
        spec["trial_count"] = trial_count
    gbco = build_gbco(rows_per_relation=spec["rows_per_relation"])
    trials = list(gbco.query_log)
    if spec["trial_count"] is not None:
        trials = trials[: spec["trial_count"]]

    runs = {mode: _run_mode(mode, spec, trials) for mode in RUN_ORDER}
    runs = {mode: runs[mode] for mode in MODES}  # report in canonical order
    _assert_parity(runs)
    warm_open = _run_warm_open(spec, trials)

    def _ratio(a: float, b: float) -> Optional[float]:
        # Ratios over sub-10ms denominators are noise, not signal.
        return round(a / b, 2) if b >= 0.01 else None

    python_t = runs["sqlite_python"]["timings"]
    windowed_t = runs["sqlite_windowed"]["timings"]
    return {
        "benchmark": "rank_aware_pushdown",
        "workload": "gbco ingest + fig6 keyword views; cold ranked reads + cold page reads",
        "config": {
            "name": config,
            "rows_per_relation": spec["rows_per_relation"],
            "trials": len(trials),
            "read_reps": spec["read_reps"],
            "page_size": spec["page_size"],
        },
        "parity": "identical ranked answers and pages across all three modes",
        "modes": {
            mode: {key: value for key, value in run.items() if not key.startswith("_")}
            for mode, run in runs.items()
        },
        "speedup_windowed_vs_python_on_sqlite": {
            "cold_read": _ratio(
                python_t["cold_read_seconds"], windowed_t["cold_read_seconds"]
            ),
            "paged_read": _ratio(
                python_t["paged_read_seconds"], windowed_t["paged_read_seconds"]
            ),
        },
        "warm_open": warm_open,
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    """Compare ``report`` to a checked-in baseline; return a process exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures = []

    # Deterministic counts: any drift means behaviour changed, not speed.
    for mode in MODES:
        base_counts = baseline["modes"][mode]["counts"]
        new_counts = report["modes"][mode]["counts"]
        for metric in ("views", "answers_total", "pages_read"):
            if new_counts[metric] != base_counts[metric]:
                failures.append(
                    f"{mode}.{metric} drifted: baseline {base_counts[metric]}, "
                    f"got {new_counts[metric]}"
                )
    if report["warm_open"]["warm_posting_builds"] != 0:
        failures.append("warm open performed a posting rebuild")

    # Wall-time gate on the windowed mode only — the path this PR optimizes.
    base_timings = baseline["modes"]["sqlite_windowed"]["timings"]
    new_timings = report["modes"]["sqlite_windowed"]["timings"]
    for metric in ("cold_read_seconds", "paged_read_seconds"):
        allowed = (
            base_timings[metric] * (1.0 + REGRESSION_TOLERANCE) + NOISE_FLOOR_SECONDS
        )
        if new_timings[metric] > allowed:
            failures.append(
                f"sqlite_windowed {metric} regressed >20%: baseline "
                f"{base_timings[metric]}s, got {new_timings[metric]}s"
            )

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        "baseline check ok: counts match; windowed cold reads "
        f"{new_timings['cold_read_seconds']}s "
        f"(baseline {base_timings['cold_read_seconds']}s), paged reads "
        f"{new_timings['paged_read_seconds']}s "
        f"(baseline {base_timings['paged_read_seconds']}s)"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="small")
    parser.add_argument("--rows", type=int, default=None, help="rows per relation override")
    parser.add_argument("--trials", type=int, default=None, help="trial count override")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_pushdown.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config, rows=args.rows, trial_count=args.trials)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for mode in MODES:
        timings = report["modes"][mode]["timings"]
        print(
            f"  {mode:>15}: cold reads {timings['cold_read_seconds']}s, "
            f"paged reads {timings['paged_read_seconds']}s"
        )
    speedup = report["speedup_windowed_vs_python_on_sqlite"]
    print(
        f"  windowed speedup vs python-on-sqlite: cold {speedup['cold_read']}x, "
        f"paged {speedup['paged_read']}x; warm open "
        f"{report['warm_open']['warm_open_seconds']}s "
        f"(cold build {report['warm_open']['cold_build_seconds']}s)"
    )
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
