"""Figure 11 — precision/recall of Q under increasing amounts of feedback.

Paper (Figure 11): the unweighted average of the two matchers roughly tracks
the metadata matcher; a single feedback step already improves precision; ten
feedback steps, and especially replaying them several times, yield the best
precision-recall trade-off.
"""

from __future__ import annotations

import pytest

from experiments import run_fig11_experiment


def best_precision_at(points, recall_level):
    eligible = [p for r, p in points if r >= recall_level - 1e-9]
    return max(eligible) if eligible else 0.0


def area_proxy(points):
    """A crude area-under-PR proxy: mean of the best precision at several recalls."""
    levels = (0.25, 0.5, 0.625, 0.75, 0.875)
    return sum(best_precision_at(points, level) for level in levels) / len(levels)


@pytest.mark.benchmark(group="fig11")
def test_fig11_feedback_levels(benchmark):
    curves = benchmark.pedantic(run_fig11_experiment, rounds=1, iterations=1)

    assert set(curves) == {"average", "q_1x1", "q_10x1", "q_10x2", "q_10x4"}

    # More feedback should not hurt the overall PR trade-off, and the
    # replayed 10x4 configuration must beat the no-feedback average baseline.
    assert area_proxy(curves["q_10x4"]) >= area_proxy(curves["average"])
    assert area_proxy(curves["q_10x4"]) >= area_proxy(curves["q_1x1"]) - 0.05
    assert best_precision_at(curves["q_10x4"], 0.75) >= best_precision_at(curves["average"], 0.75)

    benchmark.extra_info["area_proxy"] = {
        name: round(area_proxy(points), 3) for name, points in curves.items()
    }
    benchmark.extra_info["precision_at_recall_0.75"] = {
        name: round(best_precision_at(points, 0.75), 3) for name, points in curves.items()
    }
