"""Shared experiment drivers for the paper's evaluation (Section 5).

Every table and figure of the paper has a function here that produces its
rows/series; the ``test_*`` benchmark files wrap these functions with
pytest-benchmark timing, and ``harness.py`` exposes them as a CLI that prints
the results in the same shape the paper reports.

GBCO experiments (Section 5.1)
------------------------------
* :func:`run_gbco_alignment_experiment` — Figures 6 and 7: average runtime
  and attribute comparisons of EXHAUSTIVE / VIEWBASEDALIGNER /
  PREFERENTIALALIGNER when introducing the query log's 40 new sources.
* :func:`run_scaling_experiment` — Figure 8: pairwise column comparisons as
  the search graph grows from 18 to 100 to 500 sources.

InterPro–GO experiments (Section 5.2)
-------------------------------------
* :func:`run_table1_experiment` — Table 1: precision/recall/F of the
  metadata matcher vs MAD for Y ∈ {1, 2, 5}.
* :func:`run_feedback_training` / :func:`run_fig10_experiment` /
  :func:`run_fig11_experiment` / :func:`run_fig12_experiment` /
  :func:`run_table2_experiment` — the feedback-learning experiments.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.alignment import ExhaustiveAligner, PreferentialAligner, ViewBasedAligner
from repro.api import QService, QueryRequest, ServiceConfig
from repro.core import (
    GoldStandard,
    RankedView,
    evaluate_top_y,
    gold_vs_nongold_costs,
    max_precision_at_recall,
    precision_recall_curve,
    confidence_precision_recall_curve,
)
from repro.core.simulated_feedback import simulated_feedback_for_view
from repro.datasets import (
    DEFAULT_KEYWORD_QUERIES,
    QUERY_LOG,
    build_gbco,
    build_interpro_go,
    grow_catalog_and_graph,
)
from repro.datastore.database import Catalog, DataSource
from repro.graph import QueryGraphBuilder, SearchGraph
from repro.learning import FeedbackEvent
from repro.matching import (
    Correspondence,
    MadMatcher,
    MatcherEnsemble,
    MetadataMatcher,
    ValueOverlapFilter,
    ValueOverlapMatcher,
)
from repro.profiling import CatalogProfileIndex

STRATEGIES = ("exhaustive", "view_based", "preferential")


# ----------------------------------------------------------------------
# GBCO workload helpers (Section 5.1)
# ----------------------------------------------------------------------
def _clone_source(source: DataSource) -> DataSource:
    """A deep-enough copy of a source so trials do not share schema objects."""
    from repro.datastore.csvio import source_from_dict, source_to_dict

    return source_from_dict(source_to_dict(source))


def _trial_catalog(
    gbco,
    excluded_relations: Sequence[str],
    clone: bool = True,
    backend: Optional[str] = None,
) -> Catalog:
    """The GBCO catalog minus the sources owning ``excluded_relations``.

    The seed pipeline clones every source per trial; the indexed pipeline
    shares the original (immutable) table objects so the persistent profile
    index built over them stays valid across trials.  ``backend`` selects
    the trial catalog's storage backend (a fresh instance per trial —
    ``"sqlite"`` ingests the trial's sources into one SQLite database);
    sources are always cloned when a backend is given, since admission
    *moves* a table's storage into the catalog's backend.
    """
    excluded_sources = {relation.split(".")[0] for relation in excluded_relations}
    catalog = Catalog(backend=backend)
    # Admission to a backend-bound catalog MOVES a table's storage, so the
    # shared dataset's sources must be cloned whenever the trial catalog
    # actually has a backend — whether from the explicit parameter or from
    # the REPRO_BACKEND environment default.
    clone = clone or catalog.backend is not None
    for source in gbco.catalog:
        if source.name not in excluded_sources:
            catalog.add_source(_clone_source(source) if clone else source)
    return catalog


def _wire_initial_associations(
    catalog: Catalog, graph: SearchGraph, profile_index: Optional[CatalogProfileIndex] = None
) -> None:
    """Install cheap value-overlap associations so keyword views can form trees.

    This stands in for the paper's calibrated initial search graph (whose
    associations come from earlier feedback); only the graph's connectivity
    matters for the cost experiments.  With a profile index the matcher uses
    posting-list blocking (identical associations, no all-pairs scan).
    """
    matcher = ValueOverlapMatcher(
        min_confidence=0.6, min_shared_values=5, profile_index=profile_index
    )
    tables = catalog.all_tables()
    correspondences = []
    for i, table_a in enumerate(tables):
        for table_b in tables[i + 1 :]:
            correspondences.extend(matcher.match_relations(table_a, table_b))
    from repro.alignment.base import install_associations
    from repro.matching.base import top_y_per_attribute

    install_associations(graph, top_y_per_attribute(correspondences, 1))


def _calibrate_view(view: RankedView) -> float:
    """Emulate the paper's per-trial feedback calibration.

    The paper provides feedback on the keyword query so that the logged base
    query becomes the top-scoring query; the learned effect is that the
    edges used by that query become cheap relative to everything else.  We
    emulate the *outcome* directly: every learnable edge of the view's best
    tree has its per-edge weight adjusted so its cost drops to ~0.1, the
    view is refreshed, and the new k-th best cost (the pruning radius α) is
    returned.
    """
    from repro.graph.features import edge_feature

    state = view.state if view.state.trees else view.refresh()
    if not state.trees:
        return 2.0
    graph = view.query_graph.graph
    best = state.trees[0]
    for edge in best.edges(graph):
        if not edge.is_learnable():
            continue
        current = graph.edge_cost(edge)
        feature = edge_feature(edge.edge_id)
        graph.weights.set(feature, graph.weights.get(feature, 0.0) - (current - 0.1))
    refreshed = view.refresh()
    return refreshed.alpha if refreshed.alpha is not None else 2.0


@dataclass
class StrategyMeasurement:
    """Per-strategy aggregate over all new-source introductions."""

    strategy: str
    total_time_seconds: float = 0.0
    total_comparisons_no_filter: int = 0
    total_comparisons_value_filter: int = 0
    introductions: int = 0
    #: Accepted correspondences per introduction (for cross-pipeline parity
    #: checks): list of sorted ``(source, target, confidence, matcher)``.
    correspondence_log: List[Tuple[Tuple[str, str, float, str], ...]] = field(
        default_factory=list
    )

    @property
    def avg_time_ms(self) -> float:
        """Average alignment wall-clock time per introduced source, in ms."""
        if self.introductions == 0:
            return 0.0
        return 1000.0 * self.total_time_seconds / self.introductions

    @property
    def avg_comparisons_no_filter(self) -> float:
        """Average pairwise attribute comparisons without any filter."""
        if self.introductions == 0:
            return 0.0
        return self.total_comparisons_no_filter / self.introductions

    @property
    def avg_comparisons_value_filter(self) -> float:
        """Average pairwise attribute comparisons with the value-overlap filter."""
        if self.introductions == 0:
            return 0.0
        return self.total_comparisons_value_filter / self.introductions


def _log_correspondences(measurement: StrategyMeasurement, result) -> None:
    measurement.correspondence_log.append(
        tuple(
            sorted(
                (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
                for c in result.correspondences
            )
        )
    )


def run_gbco_alignment_experiment(
    rows_per_relation: int = 30,
    trials: Optional[Sequence] = None,
    k: int = 5,
    preferential_budget: int = 5,
    pipeline: str = "indexed",
    timings: Optional[Dict[str, float]] = None,
) -> Dict[str, StrategyMeasurement]:
    """Figures 6 and 7: cost of aligning new sources under each strategy.

    For every query-log trial: build the search graph over all sources except
    the trial's new ones, create the keyword view (whose k-th best cost is
    the pruning radius α), then register each new source with each strategy,
    measuring wall-clock time and pairwise attribute comparisons (with and
    without the value-overlap filter).

    ``pipeline`` selects the registration machinery:

    * ``"indexed"`` (default) — one **persistent**
      :class:`~repro.profiling.CatalogProfileIndex` over the whole GBCO
      catalog, profiled once per source for the entire replay; the matchers
      share its profiles and pair memos across trials and strategies, and
      the value-overlap filter answers pair counts from posting lists.
    * ``"seed"`` — the original all-pairs machinery: per-strategy catalog
      clones, a full value-index rebuild per introduction and strategy, and
      matchers that re-derive every profile.

    Both pipelines produce identical accepted correspondences and identical
    comparison counts (asserted by the parity tests and the registration
    benchmark); only the cost differs.  When ``timings`` (a dict) is given,
    the function records ``setup_seconds`` (workload construction: graphs,
    views, calibration — identical work in both pipelines),
    ``registration_seconds`` (the replayed source introductions — the cost
    the profile index attacks) and ``index_build_seconds``.
    """
    if pipeline not in ("indexed", "seed"):
        raise ValueError(f"unknown pipeline {pipeline!r}; use 'indexed' or 'seed'")
    gbco = build_gbco(rows_per_relation=rows_per_relation)
    trials = list(trials) if trials is not None else list(gbco.query_log)
    measurements = {name: StrategyMeasurement(strategy=name) for name in STRATEGIES}
    if timings is None:
        timings = {}
    timings.update(setup_seconds=0.0, registration_seconds=0.0, index_build_seconds=0.0)

    profile_index: Optional[CatalogProfileIndex] = None
    if pipeline == "indexed":
        # The persistent index: every GBCO source profiled exactly once for
        # the whole replay (re-introductions of a source across trials reuse
        # its profiles, as a live registration service would).
        start = time.perf_counter()
        profile_index = CatalogProfileIndex.from_catalog(gbco.catalog)
        timings["index_build_seconds"] += time.perf_counter() - start

    for entry in trials:
        setup_start = time.perf_counter()
        catalog = _trial_catalog(gbco, entry.new_relations, clone=pipeline == "seed")
        graph = SearchGraph()
        graph.add_catalog(catalog)
        _wire_initial_associations(catalog, graph, profile_index=profile_index)
        builder = QueryGraphBuilder(catalog)
        view = RankedView(list(entry.keywords), catalog, graph, k=k, builder=builder)
        view.refresh()
        alpha = _calibrate_view(view)
        timings["setup_seconds"] += time.perf_counter() - setup_start

        registration_start = time.perf_counter()
        for relation in entry.new_relations:
            source_name = relation.split(".")[0]
            if pipeline == "indexed":
                _run_indexed_introduction(
                    measurements,
                    catalog,
                    graph,
                    profile_index,
                    gbco.catalog.source(source_name),
                    view,
                    alpha,
                    preferential_budget,
                )
            else:
                _run_seed_introduction(
                    measurements,
                    catalog,
                    graph,
                    _clone_source(gbco.catalog.source(source_name)),
                    view,
                    alpha,
                    preferential_budget,
                )
        timings["registration_seconds"] += time.perf_counter() - registration_start
    if profile_index is not None:
        # Registration observability: the profile index's candidate-tier and
        # memo counters, surfaced in the benchmark reports.
        timings["sketch_candidates"] = profile_index.sketch_candidates_generated
        timings["exact_candidates"] = profile_index.exact_candidates_kept
        timings["pair_cache_hits"] = profile_index.pair_cache_hits
        timings["pair_cache_misses"] = profile_index.pair_cache_misses
        timings["pair_memo_entries"] = profile_index.pair_memo_size
    return measurements


def _measure_introduction(
    measurements: Dict[str, StrategyMeasurement],
    new_source: DataSource,
    view: RankedView,
    alpha: float,
    preferential_budget: int,
    strategy_setup,
) -> None:
    """Shared per-strategy measurement protocol for one source introduction.

    ``strategy_setup(strategy)`` supplies the pipeline-specific state —
    ``(trial_graph, trial_catalog, matcher, filtered_matcher, value_filter)``
    — and *its cost is part of the measured registration work*; everything
    after it (timed unfiltered align, count-only filtered align, bookkeeping)
    is identical by construction across pipelines, which is what the
    cross-pipeline parity assertion in ``registration_bench.py`` relies on.
    """
    for strategy in STRATEGIES:
        trial_graph, trial_catalog, matcher, filtered_matcher, value_filter = (
            strategy_setup(strategy)
        )
        aligner = _make_aligner(
            strategy, matcher, view, alpha, preferential_budget, value_filter=None
        )
        start = time.perf_counter()
        result = aligner.align(trial_graph, trial_catalog, new_source)
        elapsed = time.perf_counter() - start

        filtered_aligner = _make_aligner(
            strategy,
            filtered_matcher,
            view,
            alpha,
            preferential_budget,
            value_filter=value_filter,
            count_only=True,
        )
        filtered = filtered_aligner.align(trial_graph, trial_catalog, new_source)

        measurement = measurements[strategy]
        measurement.total_time_seconds += elapsed
        measurement.total_comparisons_no_filter += result.attribute_comparisons
        measurement.total_comparisons_value_filter += filtered.attribute_comparisons
        measurement.introductions += 1
        _log_correspondences(measurement, result)


def _run_seed_introduction(
    measurements: Dict[str, StrategyMeasurement],
    catalog: Catalog,
    graph: SearchGraph,
    new_source: DataSource,
    view: RankedView,
    alpha: float,
    preferential_budget: int,
) -> None:
    """One introduction under the seed pipeline (pre-profile-index machinery):
    a fresh catalog clone, graph copy and full value-index rebuild per strategy.
    """

    def setup(strategy):
        trial_catalog = Catalog([_clone_source(s) for s in catalog.sources()])
        trial_graph = graph.copy(share_weights=False)
        trial_catalog.add_source(new_source)
        trial_graph.add_source(new_source)
        value_filter = ValueOverlapFilter(
            index=_seed_value_index(trial_catalog), min_shared_values=1
        )
        return trial_graph, trial_catalog, MetadataMatcher(), MetadataMatcher(), value_filter

    _measure_introduction(
        measurements, new_source, view, alpha, preferential_budget, setup
    )


def _seed_value_index(catalog: Catalog):
    """The seed pipeline's per-introduction full index rebuild."""
    from repro.datastore.indexes import ValueIndex

    index = ValueIndex()
    for table in catalog.all_tables():
        index.index_table(table)
    return index


def _run_indexed_introduction(
    measurements: Dict[str, StrategyMeasurement],
    catalog: Catalog,
    graph: SearchGraph,
    profile_index: CatalogProfileIndex,
    new_source: DataSource,
    view: RankedView,
    alpha: float,
    preferential_budget: int,
) -> None:
    """One introduction under the profile-indexed pipeline.

    The persistent index already holds the source's profiles (profiled once
    for the whole replay); every strategy shares the index, the pair memos
    and one value filter.
    """
    catalog.add_source(new_source)
    value_filter = ValueOverlapFilter.from_index(profile_index)

    def setup(strategy):
        trial_graph = graph.copy(share_weights=False)
        trial_graph.add_source(new_source)
        return (
            trial_graph,
            catalog,
            MetadataMatcher(profile_index=profile_index),
            MetadataMatcher(profile_index=profile_index),
            value_filter,
        )

    try:
        _measure_introduction(
            measurements, new_source, view, alpha, preferential_budget, setup
        )
    finally:
        catalog.remove_source(new_source.name)


def _make_aligner(
    strategy: str,
    matcher,
    view: RankedView,
    alpha: float,
    preferential_budget: int,
    value_filter: Optional[ValueOverlapFilter] = None,
    count_only: bool = False,
):
    if strategy == "exhaustive":
        return ExhaustiveAligner(matcher, value_filter=value_filter, count_only=count_only)
    if strategy == "view_based":
        return ViewBasedAligner(
            matcher,
            keyword_nodes=view.terminals,
            alpha=alpha,
            value_filter=value_filter,
            count_only=count_only,
            neighborhood_graph=view.query_graph.graph,
        )
    if strategy == "preferential":
        # Prefer the relations that the view's trees actually touch (a stand-in
        # for the learned authoritativeness prior of the paper), then others.
        preferred = {
            node.relation
            for tree in view.trees()
            for node in (view.query_graph.graph.node(n) for n in tree.nodes(view.query_graph.graph))
            if node.relation
        }
        prior = {relation: 1.0 for relation in preferred}
        return PreferentialAligner(
            matcher,
            prior=prior,
            max_relations=preferential_budget,
            value_filter=value_filter,
            count_only=count_only,
        )
    raise ValueError(f"unknown strategy {strategy!r}")


def run_scaling_experiment(
    graph_sizes: Sequence[int] = (18, 100, 500),
    rows_per_relation: int = 10,
    trials: Optional[Sequence] = None,
    preferential_budget: int = 5,
    backend: Optional[str] = None,
) -> Dict[int, Dict[str, float]]:
    """Figure 8: pairwise column comparisons vs search-graph size.

    The original 18-source GBCO-like graph is grown with random two-attribute
    synthetic sources to each target size; the query-log introductions are
    then replayed in *count-only* mode (the synthetic relations carry no
    meaningful labels, so only the number of comparisons is measured — as in
    the paper).

    ``backend`` adds a storage dimension to the replay: every trial catalog
    is created on that backend (``"memory"`` / ``"sqlite"`` /
    ``"sqlite:<path>"``), so the Figure 8 numbers can be reported per
    backend — the comparison *counts* are storage-independent (asserted by
    the cross-backend parity suite), while the wall time reflects the
    chosen storage layer.
    """
    results: Dict[int, Dict[str, float]] = {}
    for size in graph_sizes:
        gbco = build_gbco(rows_per_relation=rows_per_relation)
        trial_entries = list(trials) if trials is not None else list(gbco.query_log)
        totals = {name: 0 for name in STRATEGIES}
        introductions = 0

        for entry in trial_entries:
            catalog = _trial_catalog(gbco, entry.new_relations, backend=backend)
            graph = SearchGraph()
            graph.add_catalog(catalog)
            _wire_initial_associations(catalog, graph)
            if size > catalog.source_count:
                grow_catalog_and_graph(catalog, graph, target_source_count=size, seed=size)
            builder = QueryGraphBuilder(catalog)
            view = RankedView(list(entry.keywords), catalog, graph, k=5, builder=builder)
            view.refresh()
            alpha = _calibrate_view(view)

            for relation in entry.new_relations:
                source_name = relation.split(".")[0]
                new_source = _clone_source(gbco.catalog.source(source_name))
                catalog.add_source(new_source)
                graph.add_source(new_source)
                for strategy in STRATEGIES:
                    aligner = _make_aligner(
                        strategy, MetadataMatcher(), view, alpha, preferential_budget, count_only=True
                    )
                    result = aligner.align(graph, catalog, new_source)
                    totals[strategy] += result.attribute_comparisons
                catalog.remove_source(new_source.name)
                introductions += 1

        results[size] = {
            name: totals[name] / introductions if introductions else 0.0 for name in STRATEGIES
        }
    return results


# ----------------------------------------------------------------------
# InterPro–GO experiments (Section 5.2)
# ----------------------------------------------------------------------
def matcher_correspondences(dataset=None) -> Dict[str, List[Correspondence]]:
    """Raw correspondences of the metadata matcher and MAD over the dataset."""
    dataset = dataset or build_interpro_go()
    tables = dataset.catalog.all_tables()
    metadata = MetadataMatcher()
    meta_corrs: List[Correspondence] = []
    for i, table_a in enumerate(tables):
        for table_b in tables[i + 1 :]:
            meta_corrs.extend(metadata.match_relations(table_a, table_b))
    mad_corrs = MadMatcher(top_y=5).match_tables(tables)
    return {"metadata": meta_corrs, "mad": mad_corrs}


def run_table1_experiment(y_values: Sequence[int] = (1, 2, 5)) -> List[Dict[str, object]]:
    """Table 1: precision / recall / F-measure of each matcher's top-Y edges."""
    dataset = build_interpro_go()
    correspondences = matcher_correspondences(dataset)
    rows: List[Dict[str, object]] = []
    for y in y_values:
        for system_name in ("metadata", "mad"):
            pr = evaluate_top_y(correspondences[system_name], dataset.gold, y)
            precision, recall, f_measure = pr.as_percentages()
            rows.append(
                {
                    "Y": y,
                    "system": system_name,
                    "precision": precision,
                    "recall": recall,
                    "f_measure": f_measure,
                }
            )
    return rows


@dataclass
class FeedbackTrainingResult:
    """Artifacts of a feedback-training run over the InterPro–GO dataset."""

    system: QService
    dataset: object
    views: List[RankedView] = field(default_factory=list)
    events: List[FeedbackEvent] = field(default_factory=list)
    cost_history: List[Dict[str, float]] = field(default_factory=list)
    pr_history: List[Dict[str, float]] = field(default_factory=list)


def run_feedback_training(
    num_queries: int = 10,
    repetitions: int = 4,
    k: int = 5,
    top_y: int = 2,
    record_history: bool = True,
) -> FeedbackTrainingResult:
    """Train Q from simulated feedback (the shared engine behind Figs 10–12 / Table 2).

    Bootstraps the combined matchers at top-Y, creates one view per keyword
    query, generates one simulated gold-consistent feedback event per view,
    and applies the event stream ``repetitions`` times through the service's
    persistent learner, recording the average gold / non-gold edge costs and
    precision-at-recall after every step.  The lazy pull-based service never
    refreshes a view during training — the metrics read the search graph
    directly, so replay cost is pure learning, not view maintenance.
    """
    dataset = build_interpro_go()
    service = QService(
        sources=dataset.catalog.sources(), config=ServiceConfig(top_k=k, top_y=top_y)
    )
    service.bootstrap_alignments(top_y=top_y)

    result = FeedbackTrainingResult(system=service, dataset=dataset)
    for keywords in dataset.keyword_queries[:num_queries]:
        # Solve-only creation: the training loop never reads answers, so
        # query execution is skipped entirely.
        info = service.create_view(
            QueryRequest(keywords=tuple(keywords), k=k), materialize=False
        )
        view = service.view(info.view_id)
        event = simulated_feedback_for_view(view, dataset.gold)
        if event is None:
            continue
        result.views.append(view)
        result.events.append(event)

    step = 0
    for _ in range(repetitions):
        for view, event in zip(result.views, result.events):
            service.apply_feedback_events(view, [event], repetitions=1)
            step += 1
            if record_history:
                gap = gold_vs_nongold_costs(service.graph, dataset.gold)
                result.cost_history.append(
                    {
                        "step": step,
                        "gold_avg_cost": gap.gold_average,
                        "non_gold_avg_cost": gap.non_gold_average,
                    }
                )
                curve = precision_recall_curve(service.graph, dataset.gold)
                result.pr_history.append(
                    {
                        "step": step,
                        **{
                            f"precision_at_recall_{int(level * 1000) / 10:g}": max_precision_at_recall(
                                curve, level
                            )
                            for level in (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)
                        },
                    }
                )
    return result


def run_fig10_experiment(repetitions: int = 4) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 10: PR curves for the metadata matcher, MAD, and trained Q.

    Returns, per system, a list of (recall, precision) points.
    """
    dataset = build_interpro_go()
    raw = matcher_correspondences(dataset)
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for name in ("metadata", "mad"):
        points = confidence_precision_recall_curve(raw[name], dataset.gold)
        curves[name] = [(p.recall, p.precision) for p in points]
    trained = run_feedback_training(repetitions=repetitions, record_history=False)
    q_points = precision_recall_curve(trained.system.graph, trained.dataset.gold)
    curves["q"] = [(p.recall, p.precision) for p in q_points]
    return curves


def run_fig11_experiment() -> Dict[str, List[Tuple[float, float]]]:
    """Figure 11: PR curves for Q under increasing amounts of feedback.

    Series: the unweighted matcher average (no feedback), Q(1x1), Q(10x1),
    Q(10x2) and Q(10x4).
    """
    dataset = build_interpro_go()

    # Baseline: average the matcher confidences per pair, no feedback.
    ensemble = MatcherEnsemble([MetadataMatcher(), MadMatcher()], top_y=2)
    alignments = ensemble.match_tables(dataset.catalog.all_tables())
    averaged = [
        Correspondence(a.source, a.target, a.average_confidence, "average")
        for a in alignments
    ]
    curves: Dict[str, List[Tuple[float, float]]] = {
        "average": [
            (p.recall, p.precision)
            for p in confidence_precision_recall_curve(averaged, dataset.gold)
        ]
    }

    settings = {
        "q_1x1": dict(num_queries=1, repetitions=1),
        "q_10x1": dict(num_queries=10, repetitions=1),
        "q_10x2": dict(num_queries=10, repetitions=2),
        "q_10x4": dict(num_queries=10, repetitions=4),
    }
    for label, kwargs in settings.items():
        trained = run_feedback_training(record_history=False, **kwargs)
        points = precision_recall_curve(trained.system.graph, trained.dataset.gold)
        curves[label] = [(p.recall, p.precision) for p in points]
    return curves


def run_fig12_experiment(num_queries: int = 10, repetitions: int = 4) -> List[Dict[str, float]]:
    """Figure 12: average gold vs non-gold edge cost after every feedback step."""
    trained = run_feedback_training(
        num_queries=num_queries, repetitions=repetitions, record_history=True
    )
    return trained.cost_history


def run_table2_experiment(num_queries: int = 10, repetitions: int = 4) -> Dict[float, Optional[int]]:
    """Table 2: feedback steps needed to first reach precision 1.0 per recall level."""
    trained = run_feedback_training(
        num_queries=num_queries, repetitions=repetitions, record_history=True
    )
    levels = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)
    first_step: Dict[float, Optional[int]] = {level: None for level in levels}
    for snapshot in trained.pr_history:
        for level in levels:
            key = f"precision_at_recall_{int(level * 1000) / 10:g}"
            if first_step[level] is None and snapshot.get(key, 0.0) >= 1.0 - 1e-9:
                first_step[level] = int(snapshot["step"])
    return first_step
