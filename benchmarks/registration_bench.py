"""Registration benchmark: seed all-pairs pipeline vs profile-indexed pipeline.

Replays the Figure 6/7 new-source registration workload (the GBCO query log)
under both registration pipelines of
:func:`experiments.run_gbco_alignment_experiment`:

* ``seed`` — the pre-profile-index machinery of the original codebase:
  per-strategy catalog clones, a full value-index rebuild per introduction
  and strategy, matchers re-deriving every profile;
* ``indexed`` — the :mod:`repro.profiling` fast path: one persistent
  :class:`~repro.profiling.CatalogProfileIndex`, posting-list blocking and
  shared pair memos.

It asserts correspondence-level parity (identical accepted matches and
identical comparison counts) between the two pipelines, then emits
``BENCH_registration.json`` with the before/after numbers.  The ``indexed``
pipeline runs *first*, so the seed baseline inherits every warm similarity
cache — the reported speedup is conservative.

With ``--check BASELINE`` the run additionally compares itself against a
checked-in baseline file and exits non-zero on a >20% regression of the
registration speedup or *any* drift in the (deterministic) comparison
counts.

Usage::

    PYTHONPATH=src python benchmarks/registration_bench.py \
        --config large --out BENCH_registration.json
    PYTHONPATH=src python benchmarks/registration_bench.py \
        --config small --check benchmarks/BENCH_registration_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Optional

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from experiments import run_gbco_alignment_experiment  # noqa: E402

from repro.datasets import QUERY_LOG  # noqa: E402

#: Named configurations.  ``large`` is the full Figure 6/7 replay (the
#: acceptance configuration); ``small`` is the CI smoke configuration.
CONFIGS = {
    "small": dict(rows_per_relation=15, trial_count=8),
    "large": dict(rows_per_relation=30, trial_count=None),
}

#: Allowed relative slack when checking against a baseline.
REGRESSION_TOLERANCE = 0.20


def _run_pipeline(pipeline: str, rows: int, trials) -> Dict[str, object]:
    timings: Dict[str, float] = {}
    start = time.perf_counter()
    measurements = run_gbco_alignment_experiment(
        rows_per_relation=rows, trials=trials, pipeline=pipeline, timings=timings
    )
    wall = time.perf_counter() - start
    # Registration observability counters (indexed pipeline only): the
    # profile index's candidate-tier and pair-memo statistics.
    counters = {
        key: timings[key]
        for key in (
            "sketch_candidates",
            "exact_candidates",
            "pair_cache_hits",
            "pair_cache_misses",
            "pair_memo_entries",
        )
        if key in timings
    }
    return {
        "wall_seconds": round(wall, 4),
        "setup_seconds": round(timings["setup_seconds"], 4),
        "registration_seconds": round(timings["registration_seconds"], 4),
        "index_build_seconds": round(timings["index_build_seconds"], 4),
        **({"profile_index_counters": counters} if counters else {}),
        "strategies": {
            name: {
                "avg_time_ms": round(m.avg_time_ms, 3),
                "comparisons_no_filter": m.total_comparisons_no_filter,
                "comparisons_value_filter": m.total_comparisons_value_filter,
                "introductions": m.introductions,
            }
            for name, m in measurements.items()
        },
        "_measurements": measurements,
    }


def _assert_parity(seed: Dict[str, object], indexed: Dict[str, object]) -> None:
    """Byte-identical accepted correspondences + identical comparison counts."""
    seed_m = seed["_measurements"]
    indexed_m = indexed["_measurements"]
    for name in seed_m:
        s, i = seed_m[name], indexed_m[name]
        if s.correspondence_log != i.correspondence_log:
            raise AssertionError(
                f"correspondence parity violated for strategy {name!r}: the "
                "indexed pipeline accepted different matches than the seed pipeline"
            )
        if (
            s.total_comparisons_no_filter != i.total_comparisons_no_filter
            or s.total_comparisons_value_filter != i.total_comparisons_value_filter
        ):
            raise AssertionError(
                f"comparison-count parity violated for strategy {name!r}"
            )


def run_benchmark(config: str, rows: Optional[int] = None, trial_count: Optional[int] = None) -> Dict[str, object]:
    """Run both pipelines, assert parity, and return the report dict."""
    spec = dict(CONFIGS[config])
    if rows is not None:
        spec["rows_per_relation"] = rows
    if trial_count is not None:
        spec["trial_count"] = trial_count
    trials = (
        list(QUERY_LOG)[: spec["trial_count"]]
        if spec["trial_count"] is not None
        else None
    )

    # Indexed first: the seed baseline then runs with every shared
    # similarity cache warm, so the measured speedup is a lower bound.
    indexed = _run_pipeline("indexed", spec["rows_per_relation"], trials)
    seed = _run_pipeline("seed", spec["rows_per_relation"], trials)
    _assert_parity(seed, indexed)

    def _ratio(a: float, b: float) -> float:
        return round(a / b, 2) if b > 0 else float("inf")

    report = {
        "benchmark": "registration_replay",
        "workload": "gbco fig6/fig7 new-source introductions",
        "config": {
            "name": config,
            "rows_per_relation": spec["rows_per_relation"],
            "trials": spec["trial_count"] if spec["trial_count"] is not None else len(QUERY_LOG),
            "introductions": seed["strategies"]["exhaustive"]["introductions"],
        },
        "parity": "identical accepted correspondences and comparison counts",
        "before_seed_pipeline": {k: v for k, v in seed.items() if k != "_measurements"},
        "after_indexed_pipeline": {k: v for k, v in indexed.items() if k != "_measurements"},
        "speedup": {
            "registration": _ratio(
                seed["registration_seconds"], indexed["registration_seconds"]
            ),
            "registration_vs_index_build_amortized": _ratio(
                seed["registration_seconds"],
                indexed["registration_seconds"] + indexed["index_build_seconds"],
            ),
            "wall": _ratio(seed["wall_seconds"], indexed["wall_seconds"]),
            "aligner_avg_time": {
                name: _ratio(
                    seed["strategies"][name]["avg_time_ms"],
                    indexed["strategies"][name]["avg_time_ms"],
                )
                for name in seed["strategies"]
            },
        },
    }
    return report


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    """Compare ``report`` to a checked-in baseline; return a process exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures = []

    # Comparison counts are deterministic for a given config: any drift at
    # all means the blocking/counting logic changed behaviour, so they are
    # held to exact equality (tolerance applies only to the timing ratio).
    base_strategies = baseline["after_indexed_pipeline"]["strategies"]
    new_strategies = report["after_indexed_pipeline"]["strategies"]
    for name, base in base_strategies.items():
        new = new_strategies.get(name)
        if new is None:
            failures.append(f"strategy {name!r} missing from the new run")
            continue
        for metric in ("comparisons_no_filter", "comparisons_value_filter"):
            old_value, new_value = base[metric], new[metric]
            if new_value != old_value:
                failures.append(
                    f"{name}.{metric} drifted: baseline {old_value}, got {new_value}"
                )

    # The registration speedup is machine-normalized (both pipelines run on
    # the same machine in the same process); allow 20% noise.
    base_speedup = baseline["speedup"]["registration"]
    new_speedup = report["speedup"]["registration"]
    if new_speedup < base_speedup * (1.0 - REGRESSION_TOLERANCE):
        failures.append(
            f"registration speedup regressed >20%: baseline {base_speedup}x, got {new_speedup}x"
        )

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        f"baseline check ok: speedup {new_speedup}x (baseline {base_speedup}x), "
        "comparison counts exactly match"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="large")
    parser.add_argument("--rows", type=int, default=None, help="rows per relation override")
    parser.add_argument("--trials", type=int, default=None, help="trial count override")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_registration.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config, rows=args.rows, trial_count=args.trials)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    speedup = report["speedup"]
    print(
        f"registration replay ({report['config']['name']}): "
        f"seed {report['before_seed_pipeline']['registration_seconds']}s -> "
        f"indexed {report['after_indexed_pipeline']['registration_seconds']}s "
        f"({speedup['registration']}x registration, {speedup['wall']}x wall); "
        f"report written to {args.out}"
    )
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
