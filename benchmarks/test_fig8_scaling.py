"""Figure 8 — pairwise column comparisons as the search graph grows (18 → 100 → 500 sources).

Paper (Figure 8): the number of comparisons for EXHAUSTIVE grows quickly with
the number of sources, while VIEWBASEDALIGNER and PREFERENTIALALIGNER are
hardly affected by graph size.  The benchmark uses reduced sizes
(18/60/120) and a trial subset to keep the run short; ``harness.py fig8``
reproduces the full 18/100/500 sweep.
"""

from __future__ import annotations

import pytest

from experiments import QUERY_LOG, run_scaling_experiment


@pytest.mark.benchmark(group="fig8")
def test_fig8_scaling(benchmark):
    results = benchmark.pedantic(
        run_scaling_experiment,
        kwargs=dict(graph_sizes=(18, 60, 120), rows_per_relation=8, trials=QUERY_LOG[:4]),
        rounds=1,
        iterations=1,
    )
    sizes = sorted(results)
    smallest, largest = sizes[0], sizes[-1]

    # EXHAUSTIVE grows with graph size.
    assert results[largest]["exhaustive"] > results[smallest]["exhaustive"]

    exhaustive_growth = results[largest]["exhaustive"] - results[smallest]["exhaustive"]
    view_growth = results[largest]["view_based"] - results[smallest]["view_based"]
    preferential_growth = results[largest]["preferential"] - results[smallest]["preferential"]

    # The information-need-driven strategies grow far more slowly.
    assert view_growth < exhaustive_growth
    assert preferential_growth < 0.1 * exhaustive_growth
    # At every size the pruned strategies need fewer comparisons.
    for size in sizes:
        assert results[size]["view_based"] <= results[size]["exhaustive"]
        assert results[size]["preferential"] <= results[size]["view_based"]

    benchmark.extra_info["comparisons_by_size"] = {
        size: {k: round(v, 1) for k, v in row.items()} for size, row in results.items()
    }
