"""Catalog-scale registration benchmark: sharded index + tiered MinHash blocking.

Measures how source registration scales as the catalog grows to 10k+
relations, exercising the three scaling layers of the profile index:

* **sharded posting lists** (``ServiceConfig.profile_shards``),
* **tiered blocking** — MinHash/LSH sketch candidates re-verified by the
  exact posting-list tier (``ServiceConfig.sketch_num_perm``), driven
  through the ``profile_blocked`` aligner strategy,
* **parallel matcher scoring** (``ServiceConfig.registration_workers``).

The synthetic workload extends the Figure 8 generator: community-pooled
values (see :func:`repro.datasets.synthetic.make_community_source`) give
each relation dense overlap with its own community and none outside it, so
the sketch tier has something real to prune against — the exhaustive
baseline would compare every new attribute against every catalog attribute.

At the smallest size the bench asserts **parity**: accepted correspondences
and edge ids are byte-identical across {serial, parallel} x {sharded,
unsharded} x {sketch on, off} and across the exhaustive vs profile_blocked
strategies.  For every size it reports registration seconds (serial and
parallel), comparisons per tier (sketch proposals, exact survivors, pairs
scored) against the exhaustive pair count, and the sketch tier's pruning
fraction.

With ``--check BASELINE`` the run compares itself against a checked-in
baseline and exits non-zero on any drift of the deterministic per-tier
counts, on a sketch-pruning fraction below the 80% floor at the largest
size, or on a >20% regression of the (machine-normalized) largest/smallest
registration-time scaling ratio.  The parallel >=2x gate applies only when
the host actually has >=2 CPUs (``pool="process"``; a single-core host —
like the machine that generated the checked-in baseline — records the
measured ratio instead).

Usage::

    PYTHONPATH=src python benchmarks/scale_bench.py \
        --config large --out BENCH_scale.json
    PYTHONPATH=src python benchmarks/scale_bench.py \
        --config small --check benchmarks/BENCH_scale_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api.service import QService  # noqa: E402
from repro.api.types import RegisterSourceRequest, ServiceConfig  # noqa: E402
from repro.datasets.synthetic import make_community_source  # noqa: E402
from repro.graph.edges import set_edge_id_counter  # noqa: E402

#: Named configurations.  ``large`` is the 10k-relation acceptance run;
#: ``small`` is the CI smoke configuration.
CONFIGS = {
    "small": dict(sizes=[120, 300], new_sources=5, communities=8),
    "large": dict(sizes=[1000, 4000, 10000], new_sources=10, communities=16),
}

#: Allowed relative slack on the timing scaling ratio when checking.
REGRESSION_TOLERANCE = 0.20

#: Smallest-size serial registration time below which the scaling-ratio
#: gate is noise-dominated and skipped.
TIMING_GATE_FLOOR_SECONDS = 0.25

#: The tentpole acceptance floor: the sketch tier must keep at least this
#: fraction of exhaustive attribute pairs away from the exact tier.
PRUNING_FLOOR = 0.80

#: MinHash shape used by every sketch-enabled mode.
SKETCH_NUM_PERM = 48

#: Parallel pool size used by every parallel mode.
PARALLEL_WORKERS = 4


def _service_config(
    shards: int = 1, workers: int = 1, sketch: bool = True, pool: str = "thread"
) -> ServiceConfig:
    return ServiceConfig(
        profile_shards=shards,
        registration_workers=workers,
        registration_pool=pool,
        sketch_num_perm=SKETCH_NUM_PERM if sketch else 0,
    )


def _existing_sources(size: int, communities: int) -> List:
    return [
        make_community_source(f"scale_{i:05d}", community=i % communities, seed=i)
        for i in range(size)
    ]


def _new_sources(count: int, size: int, communities: int) -> List:
    # Seeds offset past the catalog so new sources repeat no existing draw.
    return [
        make_community_source(
            f"incoming_{j:03d}", community=j % communities, seed=size + j
        )
        for j in range(count)
    ]


def _run_registrations(
    size: int,
    communities: int,
    new_count: int,
    config: ServiceConfig,
    strategy: str = "profile_blocked",
) -> Dict[str, object]:
    """Build a size-N catalog service and register ``new_count`` sources."""
    set_edge_id_counter(0)
    existing = _existing_sources(size, communities)
    setup_start = time.perf_counter()
    service = QService(existing, config=config)
    setup_seconds = time.perf_counter() - setup_start

    correspondence_log: List[Tuple] = []
    exhaustive_pairs = 0
    registration_start = time.perf_counter()
    for source in _new_sources(new_count, size, communities):
        new_arity = sum(
            len(t.schema.attribute_names) for t in source.tables()
        )
        exhaustive_pairs += new_arity * service.catalog.attribute_count
        response = service.register_source(
            RegisterSourceRequest(source=source, strategy=strategy, value_filter=True)
        )
        for c in response.alignment.correspondences:
            correspondence_log.append(
                (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
            )
        for edge in response.alignment.edges_added:
            correspondence_log.append(("edge", edge.edge_id))
    registration_seconds = time.perf_counter() - registration_start
    stats = service.stats()
    return {
        "setup_seconds": round(setup_seconds, 4),
        "registration_seconds": round(registration_seconds, 4),
        "sketch_candidates": stats.sketch_candidates,
        "exact_candidates": stats.exact_candidates,
        "pairs_scored": stats.pairs_scored,
        "pool_workers": stats.pool_workers,
        "profile_shards": stats.profile_shards,
        "exhaustive_pairs": exhaustive_pairs,
        "_correspondence_log": correspondence_log,
    }


def _assert_parity(size: int, communities: int, new_count: int) -> Dict[str, object]:
    """Byte-identical registrations across every scaling-knob combination."""
    modes = {
        "exhaustive_serial_flat": ("exhaustive", _service_config(1, 1, sketch=False)),
        "exhaustive_sketch": ("exhaustive", _service_config(1, 1, sketch=True)),
        "blocked_serial_flat": ("profile_blocked", _service_config(1, 1, sketch=False)),
        "blocked_serial_sketch": ("profile_blocked", _service_config(1, 1, sketch=True)),
        "blocked_sharded_sketch": (
            "profile_blocked",
            _service_config(4, 1, sketch=True),
        ),
        "blocked_parallel_sketch": (
            "profile_blocked",
            _service_config(4, PARALLEL_WORKERS, sketch=True),
        ),
        "blocked_parallel_flat": (
            "profile_blocked",
            _service_config(1, PARALLEL_WORKERS, sketch=False),
        ),
    }
    reference = None
    for name, (strategy, config) in modes.items():
        run = _run_registrations(size, communities, new_count, config, strategy)
        log = run["_correspondence_log"]
        if reference is None:
            reference = (name, log)
        elif log != reference[1]:
            raise AssertionError(
                f"registration parity violated: mode {name!r} accepted different "
                f"correspondences/edges than {reference[0]!r} at {size} relations"
            )
    return {
        "relations": size,
        "modes": sorted(modes),
        "accepted": sum(1 for entry in reference[1] if entry[0] != "edge"),
        "edges": sum(1 for entry in reference[1] if entry[0] == "edge"),
    }


def run_benchmark(config: str, pool: str = "process") -> Dict[str, object]:
    spec = CONFIGS[config]
    sizes: List[int] = spec["sizes"]
    communities: int = spec["communities"]
    new_count: int = spec["new_sources"]

    parity = _assert_parity(sizes[0], communities, new_count)

    curve = []
    for size in sizes:
        serial = _run_registrations(
            size, communities, new_count, _service_config(4, 1, sketch=True)
        )
        parallel = _run_registrations(
            size,
            communities,
            new_count,
            _service_config(4, PARALLEL_WORKERS, sketch=True, pool=pool),
        )
        if serial["_correspondence_log"] != parallel["_correspondence_log"]:
            raise AssertionError(
                f"serial vs parallel parity violated at {size} relations"
            )
        exhaustive = serial["exhaustive_pairs"]
        pruning = (
            1.0 - serial["sketch_candidates"] / exhaustive if exhaustive else 0.0
        )
        speedup = (
            serial["registration_seconds"] / parallel["registration_seconds"]
            if parallel["registration_seconds"] > 0
            else float("inf")
        )
        curve.append(
            {
                "relations": size,
                "setup_seconds": serial["setup_seconds"],
                "registration_seconds_serial": serial["registration_seconds"],
                "registration_seconds_parallel": parallel["registration_seconds"],
                "parallel_speedup": round(speedup, 2),
                "pool_workers": parallel["pool_workers"],
                "exhaustive_pairs": exhaustive,
                "sketch_candidates": serial["sketch_candidates"],
                "exact_candidates": serial["exact_candidates"],
                "pairs_scored": serial["pairs_scored"],
                "sketch_pruning_fraction": round(pruning, 4),
            }
        )

    scaling_ratio = (
        curve[-1]["registration_seconds_serial"]
        / curve[0]["registration_seconds_serial"]
        if curve[0]["registration_seconds_serial"] > 0
        else float("inf")
    )
    return {
        "benchmark": "scale_registration",
        "workload": "community-pooled fig8 synthetic catalog, profile_blocked strategy",
        "config": {
            "name": config,
            "sizes": sizes,
            "new_sources_per_size": new_count,
            "communities": communities,
            "sketch_num_perm": SKETCH_NUM_PERM,
            "parallel_workers": PARALLEL_WORKERS,
            "parallel_pool": pool,
        },
        "cpu_count": os.cpu_count(),
        "parity": parity,
        "curve": curve,
        "scaling_ratio_largest_vs_smallest": round(scaling_ratio, 2),
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    """Compare ``report`` to a checked-in baseline; return a process exit code."""
    baseline = json.loads(baseline_path.read_text())
    failures: List[str] = []

    # Per-tier candidate counts are deterministic for a given config: any
    # drift means the blocking tiers changed behaviour.
    base_curve = {point["relations"]: point for point in baseline["curve"]}
    new_curve = {point["relations"]: point for point in report["curve"]}
    for relations, base in base_curve.items():
        new = new_curve.get(relations)
        if new is None:
            failures.append(f"curve point at {relations} relations missing")
            continue
        for metric in (
            "exhaustive_pairs",
            "sketch_candidates",
            "exact_candidates",
            "pairs_scored",
        ):
            if new[metric] != base[metric]:
                failures.append(
                    f"{relations}-relation {metric} drifted: baseline "
                    f"{base[metric]}, got {new[metric]}"
                )

    # The tentpole floor: at the largest size the sketch tier must keep at
    # least PRUNING_FLOOR of exhaustive pairs away from the exact tier.
    largest = report["curve"][-1]
    if largest["sketch_pruning_fraction"] < PRUNING_FLOOR:
        failures.append(
            f"sketch tier pruned only {largest['sketch_pruning_fraction']:.1%} of "
            f"exhaustive pairs at {largest['relations']} relations "
            f"(floor {PRUNING_FLOOR:.0%})"
        )

    # Timing gate, machine-normalized: the largest/smallest registration
    # scaling ratio must not regress more than the tolerance.  Sub-noise
    # measurements (CI smoke sizes finish in hundredths of a second) make
    # the ratio jitter far beyond any real regression, so the gate applies
    # only when the smallest-size timing is meaningfully measurable.
    base_ratio = baseline["scaling_ratio_largest_vs_smallest"]
    new_ratio = report["scaling_ratio_largest_vs_smallest"]
    smallest_seconds = report["curve"][0]["registration_seconds_serial"]
    if smallest_seconds < TIMING_GATE_FLOOR_SECONDS:
        print(
            f"note: scaling-ratio gate skipped (smallest-size registration took "
            f"{smallest_seconds}s < {TIMING_GATE_FLOOR_SECONDS}s, noise-dominated); "
            f"measured {new_ratio}x vs baseline {base_ratio}x"
        )
    elif new_ratio > base_ratio * (1.0 + REGRESSION_TOLERANCE):
        failures.append(
            f"registration scaling ratio regressed >20%: baseline {base_ratio}x, "
            f"got {new_ratio}x"
        )

    # Parallel speedup gate: only meaningful on a multi-core host running
    # the acceptance (large) configuration with a process pool.
    cpu_count = os.cpu_count() or 1
    if (
        cpu_count >= 2
        and report["config"]["name"] == "large"
        and report["config"]["parallel_pool"] == "process"
    ):
        if largest["parallel_speedup"] < 2.0:
            failures.append(
                f"parallel registration speedup {largest['parallel_speedup']}x "
                f"< 2x at {largest['relations']} relations on a "
                f"{cpu_count}-core host"
            )
    else:
        print(
            f"note: parallel >=2x gate skipped (cpus={cpu_count}, "
            f"config={report['config']['name']}, "
            f"pool={report['config']['parallel_pool']}); measured "
            f"{largest['parallel_speedup']}x"
        )

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    print(
        f"baseline check ok: pruning {largest['sketch_pruning_fraction']:.1%} at "
        f"{largest['relations']} relations, scaling ratio {new_ratio}x "
        f"(baseline {base_ratio}x), per-tier counts exactly match"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="large")
    parser.add_argument(
        "--pool",
        choices=("thread", "process"),
        default="process",
        help="pool kind for the parallel legs",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_scale.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config, pool=args.pool)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    largest = report["curve"][-1]
    print(
        f"scale bench ({args.config}): {largest['relations']} relations, "
        f"serial {largest['registration_seconds_serial']}s / parallel "
        f"{largest['registration_seconds_parallel']}s "
        f"({largest['parallel_speedup']}x), sketch tier pruned "
        f"{largest['sketch_pruning_fraction']:.1%} of "
        f"{largest['exhaustive_pairs']} exhaustive pairs; report written to {args.out}"
    )
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
