"""Command-line harness that regenerates every table and figure of the paper.

Usage::

    python benchmarks/harness.py all            # every experiment (slow-ish)
    python benchmarks/harness.py table1
    python benchmarks/harness.py fig6 fig7      # Figures 6 and 7 share one run
    python benchmarks/harness.py fig8 --quick   # reduced sizes / trials
    python benchmarks/harness.py fig10 fig11 fig12 table2

Each command prints the rows / series the paper reports (Section 5) computed
on the synthetic stand-in datasets; see EXPERIMENTS.md for the paper-vs-
measured comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import experiments as E  # noqa: E402


def _print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def cmd_table1(args) -> None:
    _print_header("Table 1 — top-Y alignment quality (metadata matcher vs MAD)")
    rows = E.run_table1_experiment()
    print(f"{'Y':>2}  {'System':<10}  {'Precision':>9}  {'Recall':>7}  {'F-measure':>9}")
    for row in rows:
        print(
            f"{row['Y']:>2}  {row['system']:<10}  {row['precision']:>9.2f}  "
            f"{row['recall']:>7.2f}  {row['f_measure']:>9.2f}"
        )


def _run_gbco(args):
    trials = None if not args.quick else E.QUERY_LOG[:6]
    rows = 30 if not args.quick else 20
    return E.run_gbco_alignment_experiment(rows_per_relation=rows, trials=trials)


def cmd_fig6(args, measurements=None) -> None:
    _print_header("Figure 6 — aligner running time (ms, avg per introduced source)")
    measurements = measurements or _run_gbco(args)
    for name, m in measurements.items():
        print(f"  {name:<14} {m.avg_time_ms:>10.2f} ms   ({m.introductions} introductions)")


def cmd_fig7(args, measurements=None) -> None:
    _print_header("Figure 7 — pairwise attribute comparisons (avg per introduced source)")
    measurements = measurements or _run_gbco(args)
    print(f"  {'strategy':<14} {'no filter':>12} {'value-overlap filter':>22}")
    for name, m in measurements.items():
        print(
            f"  {name:<14} {m.avg_comparisons_no_filter:>12.1f} "
            f"{m.avg_comparisons_value_filter:>22.1f}"
        )


def cmd_fig8(args) -> None:
    _print_header("Figure 8 — pairwise column comparisons vs search-graph size")
    sizes = (18, 100, 500) if not args.quick else (18, 60, 120)
    trials = None if not args.quick else E.QUERY_LOG[:4]
    rows = 10 if not args.quick else 8
    results = E.run_scaling_experiment(graph_sizes=sizes, rows_per_relation=rows, trials=trials)
    print(f"  {'sources':>8}  {'exhaustive':>12}  {'view_based':>12}  {'preferential':>13}")
    for size in sorted(results):
        row = results[size]
        print(
            f"  {size:>8}  {row['exhaustive']:>12.1f}  {row['view_based']:>12.1f}  "
            f"{row['preferential']:>13.1f}"
        )


def _print_curve(name: str, points) -> None:
    print(f"  -- {name}")
    for recall, precision in sorted(points):
        print(f"     recall {recall:>6.3f}   precision {precision:>6.3f}")


def cmd_fig10(args) -> None:
    _print_header("Figure 10 — precision/recall: metadata matcher, MAD, and Q (10x4 feedback)")
    curves = E.run_fig10_experiment(repetitions=4)
    for name in ("metadata", "mad", "q"):
        _print_curve(name, curves[name])


def cmd_fig11(args) -> None:
    _print_header("Figure 11 — precision/recall of Q with increasing feedback")
    curves = E.run_fig11_experiment()
    for name in ("average", "q_1x1", "q_10x1", "q_10x2", "q_10x4"):
        _print_curve(name, curves[name])


def cmd_fig12(args) -> None:
    _print_header("Figure 12 — average gold vs non-gold edge cost per feedback step")
    history = E.run_fig12_experiment()
    print(f"  {'step':>4}  {'gold avg cost':>14}  {'non-gold avg cost':>18}")
    for snapshot in history:
        print(
            f"  {snapshot['step']:>4}  {snapshot['gold_avg_cost']:>14.3f}  "
            f"{snapshot['non_gold_avg_cost']:>18.3f}"
        )


def cmd_table2(args) -> None:
    _print_header("Table 2 — feedback steps to first reach precision 1.0 per recall level")
    steps = E.run_table2_experiment()
    print(f"  {'recall level':>12}  {'feedback steps':>14}")
    for level in sorted(steps):
        value = steps[level]
        print(f"  {level * 100:>11.1f}%  {value if value is not None else 'not reached':>14}")


COMMANDS = {
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "table2": cmd_table2,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(COMMANDS) + ["all"],
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use reduced trial counts / graph sizes for a fast smoke run",
    )
    args = parser.parse_args(argv)

    selected = list(COMMANDS) if "all" in args.experiments else args.experiments
    # fig6 and fig7 come from the same (expensive) run: share it.
    shared_gbco = None
    if "fig6" in selected and "fig7" in selected:
        shared_gbco = _run_gbco(args)
    for name in selected:
        if name in ("fig6", "fig7") and shared_gbco is not None:
            COMMANDS[name](args, measurements=shared_gbco)
        else:
            COMMANDS[name](args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
