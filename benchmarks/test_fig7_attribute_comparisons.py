"""Figure 7 — pairwise attribute comparisons per strategy, with/without value-overlap filter.

Paper (Figure 7): with no additional filter, EXHAUSTIVE needs by far the most
attribute comparisons; VIEWBASEDALIGNER cuts them by roughly 60% and
PREFERENTIALALIGNER is cheaper still; the value-overlap filter reduces all
three dramatically.
"""

from __future__ import annotations

import pytest

from experiments import QUERY_LOG, run_gbco_alignment_experiment


@pytest.mark.benchmark(group="fig7")
def test_fig7_attribute_comparisons(benchmark):
    measurements = benchmark.pedantic(
        run_gbco_alignment_experiment,
        kwargs=dict(rows_per_relation=20, trials=QUERY_LOG[:6]),
        rounds=1,
        iterations=1,
    )
    exhaustive = measurements["exhaustive"]
    view_based = measurements["view_based"]
    preferential = measurements["preferential"]

    # No additional filter: exhaustive >> view-based >= preferential.
    assert view_based.avg_comparisons_no_filter < exhaustive.avg_comparisons_no_filter
    assert preferential.avg_comparisons_no_filter <= view_based.avg_comparisons_no_filter
    # The pruning should save a substantial fraction (paper: ~60%).
    assert view_based.avg_comparisons_no_filter < 0.75 * exhaustive.avg_comparisons_no_filter

    # The value-overlap filter reduces comparisons for every strategy.
    for measurement in measurements.values():
        assert measurement.avg_comparisons_value_filter < measurement.avg_comparisons_no_filter

    benchmark.extra_info["avg_comparisons"] = {
        name: {
            "no_filter": round(m.avg_comparisons_no_filter, 1),
            "value_overlap_filter": round(m.avg_comparisons_value_filter, 1),
        }
        for name, m in measurements.items()
    }
