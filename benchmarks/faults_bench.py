"""Chaos suite: the serving lane under scripted storage faults and deadlines.

Drives the *real* stack — :class:`~repro.api.QService` over a
:class:`~repro.faults.FaultyBackend`, served by
:class:`~repro.service.QServer` with an autosaving sidecar session — while
a :class:`~repro.faults.FaultPlan` makes storage misbehave on cue, and then
proves the fault-tolerance invariants held:

* **retry probe** — a registration whose first two ``create_relation``
  calls fail transiently must apply exactly once (backoff + idempotency
  keys, edge-id counter restored so retries are invisible to signatures).
* **concurrent chaos** — the mixed query/feedback/registration workload of
  ``service_bench`` runs while every third autosave ``append_entry`` fails
  transiently and reads absorb injected scan latency.  Every submitted
  future must resolve; no typed error may escape.
* **degraded mode** — a scripted fatal fault flips the server to read-only:
  reads keep serving the last snapshot, writes fail fast with
  ``ServiceUnavailableError``, and ``recover()`` restores write service.
* **isolation oracle** — a fault-free session serially replays the applied
  write order and re-derives every observed read; any fingerprint mismatch
  is an isolation violation (the gate requires exactly zero), so retries
  and degraded-mode reads provably never leaked partial state.
* **durability** — the chaos session saves and reopens with faults off;
  every (view, tenant) ranking must match the live session byte for byte
  (zero corrupted sessions), every acknowledged registration must be
  present, and the fatally-failed one absent (zero lost or phantom writes).
* **deadline probe** — the largest Figure-8 configuration (the GBCO graph
  grown with synthetic sources) is queried under a tight ``deadline_ms``;
  the read must return a typed ``DeadlineExceededError`` or a degraded
  partial ranking within 2x the deadline, and a follow-up unbudgeted read
  must still be complete (partial results never contaminate later reads).

All fault schedules are deterministic (per-operation call counters, zero
jitter), so every count in the report is exact and the ``--check`` gate
holds them to equality against the checked-in baseline.

Usage::

    PYTHONPATH=src python benchmarks/faults_bench.py \
        --config large --out BENCH_faults.json
    PYTHONPATH=src python benchmarks/faults_bench.py \
        --config small --check benchmarks/BENCH_faults_baseline.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import wait as wait_futures
from pathlib import Path
from typing import Dict, List, Optional, Tuple

# Deterministic counts depend on tie-breaks that follow set/dict iteration
# order; pin the string hash seed (re-exec once) so the gate compares like
# with like across runs and machines — the bench-suite convention.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_HERE), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.api import (  # noqa: E402
    FeedbackRequest,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datasets import build_gbco, grow_catalog_and_graph  # noqa: E402
from repro.datastore import DataSource  # noqa: E402
from repro.datastore.csvio import source_from_dict, source_to_dict  # noqa: E402
from repro.exceptions import (  # noqa: E402
    DeadlineExceededError,
    ServiceUnavailableError,
    StorageError,
)
from repro.faults import (  # noqa: E402
    FaultPlan,
    FaultRule,
    FaultyBackend,
    RetryPolicy,
    wrap_session_store,
)
from repro.learning import AnnotationKind  # noqa: E402
from repro.matching import MetadataMatcher  # noqa: E402
from repro.service import QServer  # noqa: E402
from repro.storage import MemoryBackend  # noqa: E402

CONFIGS = {
    "small": dict(
        rows_per_relation=10,
        view_entries=(2, 3),
        workers=4,
        ops_per_worker=12,
        fig8_size=100,
        deadline_ms=500.0,
    ),
    "large": dict(
        rows_per_relation=30,
        view_entries=(2, 3, 7),
        workers=8,
        ops_per_worker=24,
        fig8_size=500,
        deadline_ms=1000.0,
    ),
}

#: Tenants the traffic mix rotates through (``None`` = shared base ranking).
TENANTS: Tuple[Optional[str], ...] = (None, "alice", "bob")

SEED = 11

#: Synthetic sources reserved for the serial fault probes (the ``chaos_``
#: prefix routes their replay requests away from the GBCO catalog).
RETRY_SOURCE = "chaos_retry"
FAIL_SOURCE = "chaos_fatal"
RECOVER_SOURCE = "chaos_recover"

#: The deadline-probe read must resolve within this multiple of its budget
#: (typed error or degraded partial — never a silent overrun).
DEADLINE_OVERRUN_FACTOR = 2.0

#: Deadline-probe solver shape: ``top_k`` past the enumeration cliff of the
#: two-entry keyword set makes the k-best Steiner solve the dominant
#: (budgeted) cost — seconds of work for the unbudgeted reference read, so
#: a sub-second deadline reliably truncates on any machine.
PROBE_TOP_K = 80
PROBE_ANSWER_LIMIT = 1000


def _reset_edge_ids() -> None:
    """Restart the process-global edge-id counter between legs so the
    sessions are byte-comparable (the parity-test convention)."""
    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _fingerprint(answers) -> List:
    """Ranking fingerprint including the producing tree and base tuples —
    distinct Steiner trees frequently project identical (values, cost)."""
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            answer.provenance.query_id if answer.provenance is not None else None,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _synthetic_source(name: str) -> DataSource:
    """A tiny deterministic source for the serial fault probes."""
    return DataSource.build(
        name,
        {name: ["acc", "label"]},
        data={
            name: [
                {"acc": f"{name}:{i:03d}", "label": f"{name} item {i}"}
                for i in range(1, 4)
            ]
        },
    )


def _register_request(gbco, name: str) -> RegisterSourceRequest:
    """Registration request by name — GBCO held-out or reserved synthetic.

    The oracle leg replays ``register:<name>`` tags through this same
    function, so chaos-leg and replay registrations are byte-identical.
    """
    if name.startswith("chaos_"):
        source = _synthetic_source(name)
    else:
        source = _clone(gbco.catalog.source(name))
    return RegisterSourceRequest(
        source=source, strategy="exhaustive", matcher=MetadataMatcher()
    )


# ----------------------------------------------------------------------
# Workload schedule (generated once, executed by chaos and oracle legs)
# ----------------------------------------------------------------------
def build_schedules(spec: Dict[str, object]) -> List[List[Dict]]:
    """Per-worker op lists: ~80% query / 15% feedback / 5% register."""
    schedules: List[List[Dict]] = []
    n_views = len(spec["view_entries"])
    for worker in range(spec["workers"]):
        rng = random.Random(SEED * 1000 + worker)
        ops: List[Dict] = []
        for _ in range(spec["ops_per_worker"]):
            roll = rng.random()
            view = rng.randrange(n_views)
            tenant = TENANTS[rng.randrange(len(TENANTS))]
            if roll < 0.80:
                ops.append({"op": "query", "view": view, "tenant": tenant})
            elif roll < 0.95:
                ops.append(
                    {
                        "op": "feedback",
                        "view": view,
                        "tenant": tenant,
                        "index": rng.randrange(10),
                        "prefer": rng.random() < 0.5,
                        "replay": rng.randrange(1, 3),
                    }
                )
            else:
                ops.append({"op": "register"})
        schedules.append(ops)
    return schedules


def _apply_feedback(service, view_id, index, tenant, prefer, replay):
    """The writer-lane feedback closure, replayable from its descriptor
    (the answer choice happens inside the writer lane, so it is
    deterministic in write order)."""
    answers = list(service.stream_answers(QueryRequest(view=view_id)))
    if not answers:
        return
    answer = answers[index % len(answers)]
    other = None
    kind = AnnotationKind.VALID
    if prefer:
        other = next(
            (
                candidate
                for candidate in answers
                if candidate.provenance.query_id != answer.provenance.query_id
            ),
            None,
        )
        if other is not None:
            kind = AnnotationKind.PREFERRED_OVER
    service.feedback(
        FeedbackRequest(
            view=view_id,
            answer=answer,
            kind=kind,
            other=other,
            replay=replay,
            tenant=tenant,
        )
    )


def build_session(gbco, spec, held_out, backend=None, autosave=False):
    """Bootstrap-aligned session minus held-out sources, workload views
    created (unmaterialized) in a fixed order.  Shared by the chaos leg
    (faulty backend + sidecar autosave) and the oracle leg (plain)."""
    _reset_edge_ids()
    service = QService(
        sources=[
            _clone(source) for source in gbco.catalog if source.name not in held_out
        ],
        config=ServiceConfig(
            top_k=5,
            top_y=1,
            write_queue_limit=256,
            # One journal entry per autosave keeps the append_entry fault
            # schedule independent of compaction thresholds.
            journal_compact_after=100_000,
        ),
        backend=backend,
        autosave=autosave,
    )
    service.bootstrap_alignments()
    view_ids = []
    for entry_index in spec["view_entries"]:
        keywords = tuple(gbco.query_log[entry_index].keywords)
        info = service.create_view(QueryRequest(keywords=keywords), materialize=False)
        view_ids.append(info.view_id)
    return service, view_ids


# ----------------------------------------------------------------------
# Leg 1: the chaos run (faulty backend, retry/degrade/recover, durability)
# ----------------------------------------------------------------------
def run_chaos(gbco, spec, held_out, schedules, workdir: Path) -> Dict[str, object]:
    plan = FaultPlan(active=False)
    backend = FaultyBackend(MemoryBackend(), plan)
    sidecar = workdir / "chaos_session.json"
    service, view_ids = build_session(
        gbco, spec, held_out, backend=backend, autosave=str(sidecar)
    )
    service.save()
    wrap_session_store(service, plan)

    observations: List[Tuple[int, str, Optional[str], List]] = []
    record_lock = threading.Lock()
    health_timeline: List[str] = []
    counts = {"queries": 0, "feedback": 0, "registrations": 0}
    fault_counts = {"transient": 0, "fatal": 0, "latency": 0}

    def snapshot_fired() -> None:
        for rule in plan.rules:
            if rule.error == "transient":
                fault_counts["transient"] += rule.fired
            elif rule.error == "fatal":
                fault_counts["fatal"] += rule.fired
            elif rule.error is None:
                fault_counts["latency"] += rule.fired

    # Deterministic backoff: zero jitter, sub-millisecond delays.
    policy = RetryPolicy(
        max_attempts=3, base_delay_s=0.001, max_delay_s=0.004, jitter=0.0
    )
    server = QServer(service, read_workers=spec["workers"], retry_policy=policy)
    start = time.perf_counter()
    try:
        health_timeline.append(server.health())

        # -- Phase 1: serial retry probe (pre-apply transient faults) -----
        # The first two create_relation calls die transiently; attempt 3
        # lands.  Catalog.add_source rolls back each failed attempt, and
        # the writer lane restores the edge-id counter, so the applied
        # registration is byte-identical to a clean one.
        plan.rules[:] = [FaultRule(op="create_relation", error="transient", times=2)]
        plan.enable()
        server.register(
            _register_request(gbco, RETRY_SOURCE), tag=f"register:{RETRY_SOURCE}"
        )
        plan.disable()
        snapshot_fired()
        counts["registrations"] += 1
        if not service.catalog.has_source(RETRY_SOURCE):
            raise AssertionError("retry probe: registration did not apply")

        # -- Phase 2: concurrent mixed traffic under transient chaos ------
        # Every third autosave append_entry fails transiently (the writer
        # retries; idempotency keys prevent double-apply) and scans absorb
        # injected latency to stir thread interleavings.
        plan.rules[:] = [
            FaultRule(op="append_entry", error="transient", after=2, every=3, times=None),
            FaultRule(
                op="scan", error=None, after=5, every=7, times=None, latency_s=0.002
            ),
        ]
        plan.enable()

        futures = []
        futures_lock = threading.Lock()
        source_lock = threading.Lock()
        pending_sources = list(held_out)
        errors: List[BaseException] = []

        def run_worker(ops: List[Dict]) -> None:
            for op in ops:
                kind = op["op"]
                if kind == "register":
                    with source_lock:
                        name = pending_sources.pop(0) if pending_sources else None
                    if name is None:
                        kind, op = "query", {"op": "query", "view": 0, "tenant": None}
                    else:
                        future = server.submit_register(
                            _register_request(gbco, name), tag=f"register:{name}"
                        )
                        with futures_lock:
                            futures.append(future)
                        with record_lock:
                            counts["registrations"] += 1
                        continue
                if kind == "query":
                    result = server.query(
                        QueryRequest(view=view_ids[op["view"]], tenant=op["tenant"])
                    )
                    with record_lock:
                        counts["queries"] += 1
                        observations.append(
                            (
                                result.snapshot_id,
                                result.view_id,
                                result.tenant,
                                _fingerprint(result.answers),
                            )
                        )
                else:  # feedback through the writer lane, replayable by tag
                    descriptor = {
                        "view": view_ids[op["view"]],
                        "index": op["index"],
                        "tenant": op["tenant"],
                        "prefer": op["prefer"],
                        "replay": op["replay"],
                    }
                    future = server.submit_mutation(
                        lambda d=descriptor: _apply_feedback(
                            service,
                            d["view"],
                            d["index"],
                            d["tenant"],
                            d["prefer"],
                            d["replay"],
                        ),
                        kind="feedback",
                        tag=json.dumps(descriptor, sort_keys=True),
                    )
                    with futures_lock:
                        futures.append(future)
                    with record_lock:
                        counts["feedback"] += 1

        def guarded(ops: List[Dict]) -> None:
            try:
                run_worker(ops)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=guarded, args=(ops,), name=f"chaos-worker-{i}")
            for i, ops in enumerate(schedules)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # Every submitted future must resolve — no write may hang or be
        # silently dropped under chaos.
        done, not_done = wait_futures(futures, timeout=120)
        if not_done:
            raise AssertionError(f"{len(not_done)} writer futures never resolved")
        unresolved = 0
        for future in futures:
            exc = future.exception(timeout=0)
            if exc is not None:
                raise AssertionError(f"acknowledged write failed under chaos: {exc!r}")
        plan.disable()
        snapshot_fired()
        health_after_chaos = server.health()
        if health_after_chaos != "healthy":
            raise AssertionError(
                f"transient chaos must not degrade the server: {health_after_chaos}"
            )
        health_timeline.append(health_after_chaos)

        # -- Phase 3: fatal fault -> degraded read-only mode -> recover ---
        plan.rules[:] = [FaultRule(op="create_relation", error="fatal", times=1)]
        plan.enable()
        fatal_error: Optional[BaseException] = None
        try:
            server.register(
                _register_request(gbco, FAIL_SOURCE), tag=f"register:{FAIL_SOURCE}"
            )
        except StorageError as exc:
            fatal_error = exc
        if fatal_error is None:
            raise AssertionError("fatal fault did not surface to the caller")
        health_timeline.append(server.health())
        if health_timeline[-1] != "degraded":
            raise AssertionError(f"expected degraded health, got {health_timeline[-1]}")

        # Degraded reads still serve the last published snapshot.
        result = server.query(QueryRequest(view=view_ids[0]))
        counts["queries"] += 1
        observations.append(
            (
                result.snapshot_id,
                result.view_id,
                result.tenant,
                _fingerprint(result.answers),
            )
        )
        # Writes fail fast with the typed unavailability error.
        try:
            server.submit_mutation(lambda: None, kind="noop", tag="noop")
        except ServiceUnavailableError:
            pass
        else:
            raise AssertionError("degraded server accepted a write")
        plan.disable()
        snapshot_fired()

        if server.recover() != "healthy":
            raise AssertionError("recover() did not restore health")
        health_timeline.append(server.health())
        server.register(
            _register_request(gbco, RECOVER_SOURCE), tag=f"register:{RECOVER_SOURCE}"
        )
        counts["registrations"] += 1

        # Final serial reads extend oracle coverage to the end state.
        for view_id in view_ids:
            for tenant in TENANTS:
                result = server.query(QueryRequest(view=view_id, tenant=tenant))
                counts["queries"] += 1
                observations.append(
                    (
                        result.snapshot_id,
                        result.view_id,
                        result.tenant,
                        _fingerprint(result.answers),
                    )
                )

        stats = server.stats()
        write_log = list(server.write_log)
        if stats.snapshot_id != len(write_log):
            raise AssertionError(
                f"snapshot id {stats.snapshot_id} != applied writes {len(write_log)}"
            )
    finally:
        server.close()
    wall = time.perf_counter() - start

    # -- Durability: save, reopen fault-free, compare every ranking -------
    acked_sources = sorted(
        tag.split(":", 1)[1] for kind, tag in write_log if kind == "register"
    )
    service.save()
    reopened = QService.open(str(sidecar))
    views_compared = 0
    corrupted = 0
    try:
        for view_id in view_ids:
            for tenant in TENANTS:
                live = _fingerprint(
                    service.stream_answers(QueryRequest(view=view_id, tenant=tenant))
                )
                restored = _fingerprint(
                    reopened.stream_answers(QueryRequest(view=view_id, tenant=tenant))
                )
                views_compared += 1
                if live != restored:
                    corrupted += 1
                    print(
                        f"CORRUPTED SESSION: view {view_id} tenant {tenant!r} "
                        "diverged after save/reopen",
                        file=sys.stderr,
                    )
        acked_present = sum(
            1 for name in acked_sources if reopened.catalog.has_source(name)
        )
        failed_absent = not reopened.catalog.has_source(FAIL_SOURCE)
    finally:
        reopened.close()
        service.close()

    return {
        "wall_seconds": round(wall, 4),
        "counts": {
            **counts,
            "writes_applied": stats.writes_applied,
            "writes_failed": stats.writes_failed,
            "writes_rejected": stats.writes_rejected,
            "writes_retried": stats.writes_retried,
            "writes_cancelled": stats.writes_cancelled,
            "snapshots_published": stats.snapshots_published,
            "observations": len(observations),
            "futures_resolved": len(done),
            "futures_unresolved": unresolved,
            "transient_faults_injected": fault_counts["transient"],
            "fatal_faults_injected": fault_counts["fatal"],
        },
        "latency_injections": fault_counts["latency"],
        "health_timeline": health_timeline,
        "durability": {
            "views_compared": views_compared,
            "corrupted_views": corrupted,
            "acked_registrations": len(acked_sources),
            "acked_registrations_present": acked_present,
            "failed_registration_absent": failed_absent,
        },
        "write_log": write_log,
        "observations": observations,
    }


# ----------------------------------------------------------------------
# Leg 2: isolation oracle (fault-free serial replay of the applied order)
# ----------------------------------------------------------------------
def run_oracle(gbco, spec, held_out, chaos: Dict[str, object]) -> Dict[str, object]:
    service, _view_ids = build_session(gbco, spec, held_out)
    # Mirror QServer's expansion schedule exactly: all views prepared
    # before snapshot 0 and again after every applied write, so lazy
    # refresh timing cannot skew edge-id allocation between legs.
    service.prepare_views(structural_only=True)

    by_snapshot: Dict[int, List[Tuple[str, Optional[str], List]]] = {}
    for snapshot_id, view_id, tenant, fingerprint in chaos["observations"]:
        by_snapshot.setdefault(snapshot_id, []).append((view_id, tenant, fingerprint))

    violations = 0
    checked = 0

    def check(snapshot_id: int) -> None:
        nonlocal violations, checked
        for view_id, tenant, observed in by_snapshot.get(snapshot_id, ()):
            expected = _fingerprint(
                service.stream_answers(QueryRequest(view=view_id, tenant=tenant))
            )
            checked += 1
            if expected != observed:
                violations += 1
                print(
                    f"ISOLATION VIOLATION: snapshot {snapshot_id} view {view_id} "
                    f"tenant {tenant!r} diverged from serial replay",
                    file=sys.stderr,
                )

    check(0)
    for write_count, (kind, tag) in enumerate(chaos["write_log"], start=1):
        if kind == "register":
            service.register_source(_register_request(gbco, tag.split(":", 1)[1]))
        elif kind == "feedback":
            descriptor = json.loads(tag)
            _apply_feedback(
                service,
                descriptor["view"],
                descriptor["index"],
                descriptor["tenant"],
                descriptor["prefer"],
                descriptor["replay"],
            )
        else:
            raise AssertionError(f"unreplayable write kind {kind!r} in write_log")
        service.prepare_views(structural_only=True)
        check(write_count)
    service.close()
    if checked != len(chaos["observations"]):
        raise AssertionError(
            "oracle coverage hole: "
            f"checked {checked} of {len(chaos['observations'])} observations "
            "(a read named a snapshot the write log cannot reach)"
        )
    return {"isolation_checks": checked, "isolation_violations": violations}


# ----------------------------------------------------------------------
# Leg 3: deadline probe against the largest Figure-8 configuration
# ----------------------------------------------------------------------
def run_deadline_probe(gbco, spec) -> Dict[str, object]:
    _reset_edge_ids()
    service = QService(
        sources=[_clone(source) for source in gbco.catalog],
        config=ServiceConfig(
            top_k=PROBE_TOP_K, top_y=1, answer_limit=PROBE_ANSWER_LIMIT
        ),
    )
    service.bootstrap_alignments()
    grow_catalog_and_graph(
        service.catalog,
        service.graph,
        target_source_count=spec["fig8_size"],
        seed=spec["fig8_size"],
    )
    # Terminals from two query-log entries: the combined keyword set makes
    # the Steiner instance hard enough that the solve dominates the read.
    keywords = tuple(
        keyword
        for entry_index in spec["view_entries"][:2]
        for keyword in gbco.query_log[entry_index].keywords
    )
    info = service.create_view(QueryRequest(keywords=keywords), materialize=False)
    # Expand structurally up front: the probe then times the *budgeted*
    # solve/execute path, not the one-off unbudgeted graph expansion.
    service.prepare_views(structural_only=True)

    deadline_ms = float(spec["deadline_ms"])
    with QServer(service, read_workers=2) as server:
        start = time.perf_counter()
        outcome = "complete"
        partial_answers = 0
        try:
            result = server.query(
                QueryRequest(view=info.view_id), deadline_ms=deadline_ms
            )
            partial_answers = len(result.answers)
            if result.degraded:
                outcome = "degraded_partial"
        except DeadlineExceededError:
            outcome = "deadline_exceeded"
        elapsed_ms = (time.perf_counter() - start) * 1000.0

        # A budgeted read must never contaminate later unbudgeted reads.
        full_start = time.perf_counter()
        full = server.query(QueryRequest(view=info.view_id))
        full_ms = (time.perf_counter() - full_start) * 1000.0
        if full.degraded:
            raise AssertionError("unbudgeted read came back degraded")
    service.close()

    return {
        "fig8_size": spec["fig8_size"],
        "deadline_ms": deadline_ms,
        "outcome": outcome,
        "elapsed_ms": round(elapsed_ms, 1),
        "within_deadline_factor": elapsed_ms <= deadline_ms * DEADLINE_OVERRUN_FACTOR,
        "partial_answers": partial_answers,
        "full_answers": len(full.answers),
        "full_read_ms": round(full_ms, 1),
    }


# ----------------------------------------------------------------------
def run_benchmark(config: str) -> Dict[str, object]:
    spec = CONFIGS[config]
    gbco = build_gbco(rows_per_relation=spec["rows_per_relation"])
    held_out = sorted(
        {
            relation.split(".")[0]
            for entry_index in spec["view_entries"]
            for relation in gbco.query_log[entry_index].new_relations
        }
    )
    schedules = build_schedules(spec)

    with tempfile.TemporaryDirectory(prefix="faults_bench_") as tmp:
        chaos = run_chaos(gbco, spec, held_out, schedules, Path(tmp))
    oracle = run_oracle(gbco, spec, held_out, chaos)
    probe = run_deadline_probe(gbco, spec)

    failures: List[str] = []
    if oracle["isolation_violations"]:
        failures.append(
            f"{oracle['isolation_violations']} isolation violations under chaos"
        )
    durability = chaos["durability"]
    if durability["corrupted_views"]:
        failures.append(f"{durability['corrupted_views']} corrupted sessions")
    if durability["acked_registrations_present"] != durability["acked_registrations"]:
        failures.append("an acknowledged registration is missing after reopen")
    if not durability["failed_registration_absent"]:
        failures.append("a failed registration leaked into the reopened session")
    if probe["outcome"] not in ("deadline_exceeded", "degraded_partial"):
        failures.append(
            f"deadline probe returned {probe['outcome']!r} — the budget never bit "
            f"(full read {probe['full_read_ms']}ms vs deadline {probe['deadline_ms']}ms)"
        )
    if not probe["within_deadline_factor"]:
        failures.append(
            f"deadline probe overran: {probe['elapsed_ms']}ms > "
            f"{DEADLINE_OVERRUN_FACTOR}x the {probe['deadline_ms']}ms deadline"
        )
    if failures:
        raise AssertionError("; ".join(failures))

    return {
        "benchmark": "faults_chaos",
        "workload": (
            "gbco serving under scripted storage faults: transient retry with "
            "idempotency keys, degraded read-only mode + recovery, durability "
            "roundtrip, isolation oracle, fig8 deadline probe"
        ),
        "config": {
            "name": config,
            "cpu_count": os.cpu_count(),
            **{k: list(v) if isinstance(v, tuple) else v for k, v in spec.items()},
        },
        "chaos": {
            k: v for k, v in chaos.items() if k not in ("write_log", "observations")
        },
        "oracle": oracle,
        "deadline_probe": probe,
    }


def check_against_baseline(report: Dict[str, object], baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures: List[str] = []

    # Every gated number is deterministic (scripted fault schedules, zero
    # jitter): drift means the fault-tolerance machinery changed behavior.
    for metric, old_value in baseline["chaos"]["counts"].items():
        new_value = report["chaos"]["counts"].get(metric)
        if new_value != old_value:
            failures.append(
                f"chaos.counts.{metric} drifted: baseline {old_value}, got {new_value}"
            )
    if report["chaos"]["health_timeline"] != baseline["chaos"]["health_timeline"]:
        failures.append(
            f"health timeline drifted: baseline {baseline['chaos']['health_timeline']}"
            f", got {report['chaos']['health_timeline']}"
        )
    for metric, old_value in baseline["chaos"]["durability"].items():
        new_value = report["chaos"]["durability"].get(metric)
        if new_value != old_value:
            failures.append(
                f"durability.{metric} drifted: baseline {old_value}, got {new_value}"
            )
    for metric in ("isolation_checks", "isolation_violations"):
        if report["oracle"][metric] != baseline["oracle"][metric]:
            failures.append(
                f"oracle.{metric} drifted: baseline {baseline['oracle'][metric]}, "
                f"got {report['oracle'][metric]}"
            )

    # Hard invariants, re-asserted independent of the baseline.
    if report["oracle"]["isolation_violations"] != 0:
        failures.append("isolation violations must be exactly zero")
    if report["chaos"]["durability"]["corrupted_views"] != 0:
        failures.append("corrupted sessions must be exactly zero")
    if report["chaos"]["counts"]["futures_unresolved"] != 0:
        failures.append("all writer futures must resolve")

    # The deadline probe's outcome depends on machine speed only in which
    # *typed* path it takes; both are acceptable, a silent overrun is not.
    probe = report["deadline_probe"]
    for metric in ("fig8_size", "full_answers"):
        if probe[metric] != baseline["deadline_probe"][metric]:
            failures.append(
                f"deadline_probe.{metric} drifted: "
                f"baseline {baseline['deadline_probe'][metric]}, got {probe[metric]}"
            )
    if probe["outcome"] not in ("deadline_exceeded", "degraded_partial"):
        failures.append(f"deadline probe outcome {probe['outcome']!r} not allowed")
    if not probe["within_deadline_factor"]:
        failures.append("deadline probe overran its 2x budget")

    if failures:
        print("BASELINE CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2
    counts = report["chaos"]["counts"]
    print(
        f"baseline check ok: {counts['transient_faults_injected']} transient + "
        f"{counts['fatal_faults_injected']} fatal faults injected, "
        f"{counts['writes_retried']} retries, "
        f"{report['oracle']['isolation_checks']} isolation checks / 0 violations, "
        f"0 corrupted sessions, deadline probe {probe['outcome']} "
        f"in {probe['elapsed_ms']}ms"
    )
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--config", choices=sorted(CONFIGS), default="large")
    parser.add_argument(
        "--out", type=Path, default=Path("benchmarks/BENCH_faults.json"), help="report path"
    )
    parser.add_argument(
        "--check", type=Path, default=None, help="baseline JSON to compare against"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.config)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    counts = report["chaos"]["counts"]
    probe = report["deadline_probe"]
    print(
        f"chaos: {report['chaos']['wall_seconds']}s, "
        f"{counts['queries']} queries / {counts['feedback']} feedback / "
        f"{counts['registrations']} registrations, "
        f"{counts['transient_faults_injected']} transient + "
        f"{counts['fatal_faults_injected']} fatal faults, "
        f"{counts['writes_retried']} retries, "
        f"health {' -> '.join(report['chaos']['health_timeline'])}"
    )
    print(
        f"durability: {report['chaos']['durability']['views_compared']} rankings "
        "compared after save/reopen, "
        f"{report['chaos']['durability']['corrupted_views']} corrupted"
    )
    print(
        f"oracle: {report['oracle']['isolation_checks']} reads checked against "
        f"serial replay, {report['oracle']['isolation_violations']} violations"
    )
    print(
        f"deadline probe (fig8 n={probe['fig8_size']}): {probe['outcome']} in "
        f"{probe['elapsed_ms']}ms (deadline {probe['deadline_ms']}ms, "
        f"full read {probe['full_read_ms']}ms, "
        f"{probe['partial_answers']}/{probe['full_answers']} answers)"
    )
    print(f"report written to {args.out}")
    if args.check is not None:
        return check_against_baseline(report, args.check)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
